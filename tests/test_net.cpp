// The network subsystem, pinned over REAL loopback TCP: shard hashing
// (golden FNV-1a values — the router's key-placement contract), explicit
// admission control (full Service queue, per-session inflight cap, and the
// acceptor's max-connections bound all answer with an immediate
// `overloaded` event, never silent latency), dropped-connection load
// shedding through RunControl, the extended `stats` op, and the
// byte-determinism of the result stream across worker counts — replaying
// tests/fixtures/serve_session.jsonl through a 1-thread and a 4-thread
// NetServer must produce identical bytes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/json.h"
#include "common/timing.h"
#include "net/server.h"
#include "net/session.h"
#include "net/shard.h"
#include "net/socket.h"
#include "service/service.h"

namespace pqs {
namespace {

using namespace std::chrono_literals;

// ---- test drivers ----------------------------------------------------------

std::atomic<int> g_running{0};
std::atomic<bool> g_gate{false};

SearchReport net_test_report(const RunContext& ctx) {
  SearchReport report;
  report.measured = ctx.marked.front();
  report.correct = true;
  report.queries = 1;
  report.queries_per_trial = 1;
  report.success_probability = 1.0;
  return report;
}

/// Spins at a cancellation checkpoint until the gate opens. The RAII guard
/// decrements `g_running` on BOTH exits — normal return and the
/// CancelledError unwind out of checkpoint() — so tests can observe "the
/// execution actually stopped", not just "the status changed".
class NetGatedAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "net-gated"; }
  std::string_view summary() const override { return "test driver"; }
  SearchReport run(RunContext& ctx) const override {
    g_running.fetch_add(1);
    struct Guard {
      ~Guard() { g_running.fetch_sub(1); }
    } guard;
    while (!g_gate.load()) {
      ctx.checkpoint();  // a cancelled job unwinds from HERE
      std::this_thread::sleep_for(1ms);
    }
    return net_test_report(ctx);
  }
};

Registry net_test_registry() {
  Registry registry = Registry::with_builtin_algorithms();
  registry.register_algorithm(
      "net-gated", [] { return std::make_unique<NetGatedAlgorithm>(); });
  return registry;
}

void reset_driver_state() {
  g_running = 0;
  g_gate = false;
}

bool wait_until(const std::function<bool()>& condition,
                std::chrono::milliseconds timeout = 10s) {
  Stopwatch watch;
  while (watch.millis() < static_cast<double>(timeout.count())) {
    if (condition()) {
      return true;
    }
    std::this_thread::sleep_for(1ms);
  }
  return condition();
}

// ---- a tiny protocol client ------------------------------------------------

std::string submit_line(const std::string& id, std::uint64_t seed) {
  Json spec = Json::make_object();
  spec["algorithm"] = std::string("net-gated");
  spec["n_items"] = std::uint64_t{64};
  spec["n_blocks"] = std::uint64_t{1};
  Json marked = Json::make_array();
  marked.push_back(std::uint64_t{9});
  spec["marked"] = std::move(marked);
  spec["seed"] = seed;
  Json request = Json::make_object();
  request["op"] = std::string("submit");
  request["id"] = id;
  request["spec"] = std::move(spec);
  return request.dump();
}

struct TestClient {
  net::Socket socket;
  net::LineReader reader;

  explicit TestClient(std::uint16_t port)
      : socket(net::connect_with_retry({"127.0.0.1", port}, 5000ms)),
        reader(socket) {}

  void send(const std::string& line) {
    ASSERT_TRUE(socket.write_all(line + "\n"));
  }

  /// Next event of any kind; fails the test on EOF.
  Json next_event() {
    std::string line;
    const bool got = reader.next_line(line);
    PQS_CHECK_MSG(got, "connection closed while expecting an event");
    return Json::parse(line);
  }

  /// Next ack (skipping interleaved async `result` events).
  Json next_ack() {
    while (true) {
      Json event = next_event();
      if (event.at("event").as_string() != "result") {
        return event;
      }
    }
  }

  /// Next `result` event (skipping acks).
  Json next_result() {
    while (true) {
      Json event = next_event();
      if (event.at("event").as_string() == "result") {
        return event;
      }
    }
  }
};

// ---- shard hashing ---------------------------------------------------------

TEST(ShardTest, Fnv1aGoldenValues) {
  // Reference values of the standard 64-bit FNV-1a parameters. If any of
  // these move, every deployed router would re-home its keys on upgrade and
  // cold the fleet's caches — treat a failure here as an ABI break.
  EXPECT_EQ(net::fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(net::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(net::fnv1a("foobar"), 0x85944171f73967e8ULL);
  static_assert(net::fnv1a("pqs") == net::fnv1a("pqs"),
                "fnv1a must be constexpr");
}

TEST(ShardTest, ShardForKeyIsStableAndInRange) {
  const std::string key = "{\"algorithm\":\"grover\",\"n_items\":1024}";
  const std::size_t first = net::shard_for_key(key, 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(net::shard_for_key(key, 4), first);
  }
  for (std::size_t n = 1; n <= 16; ++n) {
    EXPECT_LT(net::shard_for_key(key, n), n);
  }
  EXPECT_EQ(net::shard_for_key(key, 1), 0u);
}

TEST(ShardTest, KeysSpreadAcrossWorkers) {
  std::vector<std::size_t> hits(4, 0);
  for (int k = 0; k < 1000; ++k) {
    ++hits[net::shard_for_key("key-" + std::to_string(k), 4)];
  }
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_GT(hits[w], 150u) << "worker " << w;  // ~250 expected
  }
}

// ---- admission control -----------------------------------------------------

TEST(NetAdmissionTest, FullServiceQueueAnswersOverloadedImmediately) {
  reset_driver_state();
  Service service({.threads = 1, .queue_capacity = 1}, net_test_registry());
  net::NetServer server(service, {.listen = {"127.0.0.1", 0}});
  server.start();

  TestClient client(server.port());
  client.send(submit_line("a", 1));
  EXPECT_EQ(client.next_ack().at("event").as_string(), "accepted");
  // Wait until "a" occupies the worker, so "b" deterministically sits in
  // the queue (capacity 1) and "c" deterministically overflows it.
  ASSERT_TRUE(wait_until([] { return g_running.load() == 1; }));
  client.send(submit_line("b", 2));
  EXPECT_EQ(client.next_ack().at("event").as_string(), "accepted");
  client.send(submit_line("c", 3));
  const Json overloaded = client.next_ack();
  EXPECT_EQ(overloaded.at("event").as_string(), "overloaded");
  EXPECT_EQ(overloaded.at("id").as_string(), "c");
  EXPECT_NE(overloaded.at("reason").as_string().find("queue is full"),
            std::string::npos);

  g_gate = true;  // let a and b finish so the server drains cleanly
  EXPECT_EQ(client.next_result().at("id").as_string(), "a");
  EXPECT_EQ(client.next_result().at("id").as_string(), "b");
  server.stop();
}

TEST(NetAdmissionTest, InflightCapAnswersOverloadedImmediately) {
  reset_driver_state();
  Service service({.threads = 1}, net_test_registry());
  net::NetServer server(
      service, {.listen = {"127.0.0.1", 0}, .session = {.inflight_limit = 1}});
  server.start();

  TestClient client(server.port());
  client.send(submit_line("a", 1));
  EXPECT_EQ(client.next_ack().at("event").as_string(), "accepted");
  client.send(submit_line("b", 2));
  const Json overloaded = client.next_ack();
  EXPECT_EQ(overloaded.at("event").as_string(), "overloaded");
  EXPECT_EQ(overloaded.at("id").as_string(), "b");
  EXPECT_NE(overloaded.at("reason").as_string().find("inflight cap"),
            std::string::npos);

  g_gate = true;
  EXPECT_EQ(client.next_result().at("id").as_string(), "a");
  // With "a" answered the cap frees up: the same connection may submit again.
  client.send(submit_line("c", 3));
  EXPECT_EQ(client.next_ack().at("event").as_string(), "accepted");
  EXPECT_EQ(client.next_result().at("id").as_string(), "c");
  server.stop();
}

TEST(NetAdmissionTest, OverCapSubmitIsRefusedBeforeSpecParsing) {
  reset_driver_state();
  Service service({.threads = 1}, net_test_registry());
  net::NetServer server(
      service, {.listen = {"127.0.0.1", 0}, .session = {.inflight_limit = 1}});
  server.start();

  TestClient client(server.port());
  client.send(submit_line("a", 1));
  EXPECT_EQ(client.next_ack().at("event").as_string(), "accepted");
  // A peer at its cap is refused before its spec is even looked at: the
  // same line that would be a spec error below the cap (no "spec" field)
  // answers `overloaded` here — the cap is why it was refused, and an
  // over-cap peer cannot force per-line spec validation.
  client.send(R"({"op":"submit","id":"b"})");
  const Json overloaded = client.next_ack();
  EXPECT_EQ(overloaded.at("event").as_string(), "overloaded");
  EXPECT_EQ(overloaded.at("id").as_string(), "b");
  EXPECT_NE(overloaded.at("reason").as_string().find("inflight cap"),
            std::string::npos);

  g_gate = true;
  EXPECT_EQ(client.next_result().at("id").as_string(), "a");
  // Below the cap the missing spec IS an error — admission first changes
  // only what an over-cap submit costs and answers.
  client.send(R"({"op":"submit","id":"c"})");
  EXPECT_EQ(client.next_ack().at("event").as_string(), "error");
  server.stop();
}

TEST(NetAdmissionTest, MaxConnectionsRejectsTheExtraConnection) {
  reset_driver_state();
  Service service({.threads = 1}, net_test_registry());
  net::NetServer server(
      service, {.listen = {"127.0.0.1", 0}, .max_connections = 1});
  server.start();

  TestClient first(server.port());
  // A full round-trip proves `first` is admitted and its session is live
  // (not just sitting in the kernel accept backlog).
  first.send(R"({"op":"stats","id":"s"})");
  EXPECT_EQ(first.next_ack().at("event").as_string(), "stats");

  TestClient second(server.port());
  const Json overloaded = second.next_event();
  EXPECT_EQ(overloaded.at("event").as_string(), "overloaded");
  EXPECT_NE(overloaded.at("reason").as_string().find("max connections"),
            std::string::npos);
  std::string line;
  EXPECT_FALSE(second.reader.next_line(line));  // and then the door closes
  server.stop();
}

// ---- dropped-connection load shedding --------------------------------------

TEST(NetAbortTest, DroppedConnectionCancelsItsInflightJobs) {
  reset_driver_state();
  Service service({.threads = 2}, net_test_registry());
  net::NetServer server(service, {.listen = {"127.0.0.1", 0}});
  server.start();

  {
    TestClient client(server.port());
    client.send(submit_line("doomed", 1));
    EXPECT_EQ(client.next_ack().at("event").as_string(), "accepted");
    ASSERT_TRUE(wait_until([] { return g_running.load() == 1; }));
    // Client vanishes here WITHOUT reading its result: ~TestClient closes
    // the socket. The gate never opens — only RunControl cancellation can
    // stop the execution.
  }
  ASSERT_TRUE(wait_until([] { return g_running.load() == 0; }));
  ASSERT_TRUE(wait_until([&] { return service.stats().cancelled == 1; }));
  EXPECT_EQ(service.stats().done, 0u);
  ASSERT_TRUE(wait_until([&] { return server.live_connections() == 0; }));
  server.stop();
}

// ---- the extended stats op -------------------------------------------------

TEST(NetStatsTest, StatsEventCarriesCountersCachesAndLatency) {
  reset_driver_state();
  Service service({.threads = 1}, net_test_registry());
  net::NetServer server(service, {.listen = {"127.0.0.1", 0}});
  server.start();

  TestClient client(server.port());
  // x1 runs (gate closed); the identical x2 arrives WHILE it runs, so it
  // coalesces onto x1's execution — distinct from the x3 cache hit below.
  client.send(submit_line("x1", 5));
  EXPECT_EQ(client.next_ack().at("event").as_string(), "accepted");
  ASSERT_TRUE(wait_until([] { return g_running.load() == 1; }));
  client.send(submit_line("x2", 5));
  EXPECT_EQ(client.next_ack().at("event").as_string(), "accepted");
  g_gate = true;
  EXPECT_EQ(client.next_result().at("id").as_string(), "x1");
  EXPECT_EQ(client.next_result().at("id").as_string(), "x2");
  client.send(submit_line("x3", 5));  // same spec, after done: result LRU
  EXPECT_EQ(client.next_result().at("id").as_string(), "x3");

  client.send(R"({"op":"stats","id":"s"})");
  const Json stats = client.next_ack();
  EXPECT_EQ(stats.at("event").as_string(), "stats");
  EXPECT_EQ(stats.at("id").as_string(), "s");
  EXPECT_EQ(stats.at("workers").as_uint(), 1u);
  EXPECT_EQ(stats.at("queue_depth").as_uint(), 0u);

  const Json& counters = stats.at("counters");
  EXPECT_EQ(counters.at("submitted").as_uint(), 3u);
  EXPECT_EQ(counters.at("coalesced_submits").as_uint(), 1u);  // x2
  EXPECT_EQ(counters.at("cache_hits").as_uint(), 1u);         // x3
  EXPECT_EQ(counters.at("executed").as_uint(), 1u);
  EXPECT_EQ(counters.at("done").as_uint(), 1u);
  EXPECT_EQ(counters.at("rejected").as_uint(), 0u);
  EXPECT_NEAR(stats.at("coalescing_hit_rate").as_double(), 1.0 / 3.0, 1e-9);

  EXPECT_TRUE(stats.at("plan_cache").has("hits"));
  EXPECT_TRUE(stats.at("plan_cache").has("evictions"));
  EXPECT_EQ(stats.at("result_cache").at("hits").as_uint(), 1u);
  EXPECT_EQ(stats.at("result_cache").at("size").as_uint(), 1u);

  // One finished execution -> every stage histogram holds one sample.
  for (const char* stage : {"queue", "plan", "exec"}) {
    EXPECT_EQ(stats.at("latency_ns").at(stage).at("count").as_uint(), 1u)
        << stage;
  }
  server.stop();
}

// ---- byte-determinism across worker counts ---------------------------------

std::vector<std::string> replay_fixture_over_tcp(unsigned threads) {
  Service service({.threads = threads}, Registry::with_builtin_algorithms());
  net::NetServer server(service, {.listen = {"127.0.0.1", 0}});
  server.start();

  std::ifstream fixture(std::string(PQS_SOURCE_DIR) +
                        "/tests/fixtures/serve_session.jsonl");
  PQS_CHECK_MSG(fixture.good(), "fixture missing");
  TestClient client(server.port());
  std::size_t requests = 0;
  std::string line;
  while (std::getline(fixture, line)) {
    if (line.empty()) {
      continue;
    }
    client.send(line);
    ++requests;
  }
  // One synchronous ack per request; one result per accepted submit.
  std::size_t acks = 0;
  std::size_t accepted = 0;
  std::vector<std::string> results;
  while (acks < requests || results.size() < accepted) {
    const Json event = client.next_event();
    const std::string& kind = event.at("event").as_string();
    if (kind == "result") {
      results.push_back(event.dump());
    } else {
      accepted += kind == "accepted" ? 1 : 0;
      ++acks;
    }
  }
  server.stop();
  return results;
}

TEST(NetDeterminismTest, ResultStreamIsByteIdenticalAcrossWorkerCounts) {
  const std::vector<std::string> one = replay_fixture_over_tcp(1);
  const std::vector<std::string> four = replay_fixture_over_tcp(4);
  ASSERT_EQ(one.size(), 6u);  // 7 requests, 1 invalid spec
  EXPECT_EQ(one, four);
  // Submission order, not completion order.
  EXPECT_NE(one[0].find("\"id\":\"grk-1\""), std::string::npos);
  EXPECT_NE(one[5].find("\"id\":\"exact-1\""), std::string::npos);
}

// ---- wire plumbing ---------------------------------------------------------

TEST(NetWireTest, ParseHostportRoundTrips) {
  const net::Addr addr = net::parse_hostport("127.0.0.1:7401");
  EXPECT_EQ(addr.host, "127.0.0.1");
  EXPECT_EQ(addr.port, 7401);
  EXPECT_EQ(addr.to_string(), "127.0.0.1:7401");
  EXPECT_EQ(net::parse_hostport("[::1]:80").host, "::1");
  EXPECT_THROW(net::parse_hostport("no-port"), CheckFailure);
  EXPECT_THROW(net::parse_hostport("host:99999"), CheckFailure);
}

TEST(NetWireTest, StatsNeedsNoIdButSubmitDoes) {
  reset_driver_state();
  Service service({.threads = 1}, net_test_registry());
  net::NetServer server(service, {.listen = {"127.0.0.1", 0}});
  server.start();
  TestClient client(server.port());
  // stats is connection-level: no id needed, and none invented in the reply.
  client.send(R"({"op":"stats"})");
  const Json stats = client.next_ack();
  EXPECT_EQ(stats.at("event").as_string(), "stats");
  EXPECT_FALSE(stats.has("id"));
  // submit addresses a job: a missing id is a loud error ack, not a CHECK
  // message about JSON internals.
  client.send(R"({"op":"submit","spec":{}})");
  const Json error = client.next_ack();
  EXPECT_EQ(error.at("event").as_string(), "error");
  EXPECT_NE(error.at("message").as_string().find("requires a non-empty"),
            std::string::npos);
  server.stop();
}

TEST(NetWireTest, CarriageReturnsAreStripped) {
  reset_driver_state();
  Service service({.threads = 1}, net_test_registry());
  net::NetServer server(service, {.listen = {"127.0.0.1", 0}});
  server.start();
  TestClient client(server.port());
  // An \r\n-framed client (telnet/nc on some platforms) still parses.
  ASSERT_TRUE(client.socket.write_all("{\"op\":\"stats\",\"id\":\"s\"}\r\n"));
  EXPECT_EQ(client.next_ack().at("event").as_string(), "stats");
  server.stop();
}

}  // namespace
}  // namespace pqs

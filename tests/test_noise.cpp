#include "qsim/noise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "partial/noisy.h"

namespace pqs::qsim {
namespace {

TEST(Noise, DisabledModelInjectsNothing) {
  auto sv = StateVector::uniform(5);
  const auto before = sv;
  Rng rng(1);
  NoiseModel model;  // kNone
  EXPECT_EQ(apply_noise(sv, model, rng), 0u);
  model = {NoiseKind::kDepolarizing, 0.0};
  EXPECT_EQ(apply_noise(sv, model, rng), 0u);
  EXPECT_LT(sv.linf_distance(before), 1e-15);
}

TEST(Noise, ProbabilityOneDephasingFlipsEveryOneBit) {
  // Z on every qubit: basis state |x> picks up (-1)^{popcount(x)}.
  auto sv = StateVector::uniform(3);
  Rng rng(2);
  const NoiseModel model{NoiseKind::kDephasing, 1.0};
  EXPECT_EQ(apply_noise(sv, model, rng), 3u);
  for (Index x = 0; x < 8; ++x) {
    const double sign = __builtin_popcountll(x) % 2 == 0 ? 1.0 : -1.0;
    EXPECT_NEAR(sv.amplitude(x).real(), sign / std::sqrt(8.0), 1e-12)
        << "x=" << x;
  }
}

TEST(Noise, ProbabilityOneBitFlipPermutesBasis) {
  // X on every qubit maps |x> -> |~x>.
  auto sv = StateVector::basis(4, 0b0110);
  Rng rng(3);
  const NoiseModel model{NoiseKind::kBitFlip, 1.0};
  apply_noise(sv, model, rng);
  EXPECT_NEAR(sv.probability(0b1001), 1.0, 1e-12);
}

TEST(Noise, InjectionRateMatchesProbability) {
  Rng rng(4);
  const NoiseModel model{NoiseKind::kDepolarizing, 0.3};
  std::uint64_t injected = 0;
  constexpr int kTrials = 3000;
  for (int t = 0; t < kTrials; ++t) {
    auto sv = StateVector::uniform(4);
    injected += apply_noise(sv, model, rng);
  }
  const double rate =
      static_cast<double>(injected) / (4.0 * kTrials);  // per qubit
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Noise, PreservesNorm) {
  Rng rng(5);
  for (const auto kind : {NoiseKind::kDepolarizing, NoiseKind::kDephasing,
                          NoiseKind::kBitFlip}) {
    auto sv = StateVector::uniform(6);
    sv.phase_flip(13);
    sv.reflect_about_uniform();
    const NoiseModel model{kind, 0.5};
    for (int i = 0; i < 10; ++i) {
      apply_noise(sv, model, rng);
    }
    EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-10)
        << noise_kind_name(kind);
  }
}

TEST(Noise, RejectsInvalidProbability) {
  auto sv = StateVector::uniform(2);
  Rng rng(6);
  const NoiseModel model{NoiseKind::kBitFlip, 1.5};
  EXPECT_THROW(apply_noise(sv, model, rng), CheckFailure);
}

TEST(Noise, RejectsNegativeProbability) {
  // Regression: a negative p used to make every Bernoulli draw fail, so a
  // "noisy" run silently executed clean while being reported as noisy.
  auto sv = StateVector::uniform(2);
  Rng rng(6);
  const NoiseModel model{NoiseKind::kDepolarizing, -0.1};
  EXPECT_FALSE(model.valid());
  EXPECT_THROW(model.validate(), CheckFailure);
  EXPECT_THROW(apply_noise(sv, model, rng), CheckFailure);

  const oracle::Database db = oracle::Database::with_qubits(6, 1);
  Rng rng2(7);
  EXPECT_THROW(partial::run_noisy_partial_search(db, 2, model, 10, rng2),
               CheckFailure);
  EXPECT_THROW(partial::run_noisy_full_search_block(db, 2, model, 10, rng2),
               CheckFailure);

  // The backend-level channel must also refuse, not read the model as
  // disabled and silently run clean.
  for (const auto kind : {BackendKind::kDense, BackendKind::kSymmetry}) {
    auto backend =
        make_backend(kind, BackendSpec::single_target(16, 2, 5));
    EXPECT_THROW(backend->apply_noise(model, rng), CheckFailure);
  }
}

TEST(Noise, InjectedCountsOnlyRealGateApplications) {
  // Regression: the injection counter used to increment before the channel
  // dispatch, so a kNone arm (or any non-applying path) could report
  // injections that never touched the state.
  Rng rng(8);
  auto sv = StateVector::uniform(3);
  const auto before = sv;
  EXPECT_EQ(apply_noise(sv, NoiseModel{NoiseKind::kNone, 1.0}, rng), 0u);
  EXPECT_LT(sv.linf_distance(before), 1e-15);

  // With p = 1 every qubit gets exactly one real Pauli: count == qubits and
  // the state moved (Z on the uniform state flips signs).
  auto sv2 = StateVector::uniform(4);
  EXPECT_EQ(apply_noise(sv2, NoiseModel{NoiseKind::kDephasing, 1.0}, rng), 4u);
  EXPECT_GT(sv2.linf_distance(StateVector::uniform(4)), 0.1);

  // Same contract for both engines.
  auto backend = make_backend(BackendKind::kDense,
                              BackendSpec::single_target(16, 2, 5));
  EXPECT_EQ(backend->apply_noise(NoiseModel{NoiseKind::kNone, 1.0}, rng), 0u);
  EXPECT_EQ(backend->apply_noise(NoiseModel{NoiseKind::kBitFlip, 1.0}, rng),
            4u);
  auto sym = make_backend(BackendKind::kSymmetry,
                          BackendSpec::single_target(16, 2, 5));
  EXPECT_EQ(sym->apply_noise(NoiseModel{NoiseKind::kNone, 1.0}, rng), 0u);
  EXPECT_EQ(sym->apply_noise(NoiseModel{NoiseKind::kBitFlip, 1.0}, rng), 4u);
}

TEST(Noise, ParseNoiseKindRoundTrips) {
  EXPECT_EQ(parse_noise_kind("none"), NoiseKind::kNone);
  EXPECT_EQ(parse_noise_kind("depolarizing"), NoiseKind::kDepolarizing);
  EXPECT_EQ(parse_noise_kind("dephasing"), NoiseKind::kDephasing);
  EXPECT_EQ(parse_noise_kind("bitflip"), NoiseKind::kBitFlip);
  EXPECT_THROW(parse_noise_kind("gaussian"), CheckFailure);
}

TEST(Noise, BackendNoisePreservesNorm) {
  Rng rng(10);
  for (const auto kind : {BackendKind::kDense, BackendKind::kSymmetry}) {
    auto backend =
        make_backend(kind, BackendSpec::single_target(64, 4, 37));
    backend->apply_oracle();
    backend->apply_global_diffusion();
    for (int i = 0; i < 10; ++i) {
      backend->apply_noise(NoiseModel{NoiseKind::kDepolarizing, 0.5}, rng);
      backend->apply_oracle();
      backend->apply_block_diffusion();
    }
    EXPECT_NEAR(backend->norm_squared(), 1.0, 1e-9) << to_string(kind);
  }
}

TEST(Noise, KindNamesAreDistinct) {
  EXPECT_STRNE(noise_kind_name(NoiseKind::kDepolarizing),
               noise_kind_name(NoiseKind::kDephasing));
  EXPECT_STREQ(noise_kind_name(NoiseKind::kNone), "none");
}

TEST(NoisyPartial, QueriesPerTrialEqualsDatabaseMeterDelta) {
  // Regression: the drivers used to hand-roll query accounting (an explicit
  // add_queries(1) for Step 3 vs implicit counting inside the oracle), so
  // nothing tied the reported queries_per_trial to the meter. Now each
  // trial counts its queries locally, every trial must agree, and the
  // meter advances by exactly trials * queries_per_trial.
  const oracle::Database db = oracle::Database::with_qubits(9, 100);
  Rng rng(77);
  for (const auto backend : {BackendKind::kDense, BackendKind::kSymmetry}) {
    partial::NoisyOptions options;
    options.backend = backend;
    const NoiseModel model{NoiseKind::kDepolarizing, 0.01};

    db.reset_queries();
    const auto part =
        partial::run_noisy_partial_search(db, 2, model, 37, rng, options);
    EXPECT_EQ(db.queries(), 37u * part.queries_per_trial);

    db.reset_queries();
    const auto full =
        partial::run_noisy_full_search_block(db, 2, model, 23, rng, options);
    EXPECT_EQ(db.queries(), 23u * full.queries_per_trial);
    EXPECT_EQ(full.queries_per_trial, grover_optimal_iterations(db.size()));
  }
}

TEST(NoisyPartial, ZeroNoiseMatchesCleanSuccess) {
  Rng rng(7);
  const oracle::Database db = oracle::Database::with_qubits(8, 99);
  const NoiseModel none;
  const auto result =
      partial::run_noisy_partial_search(db, 2, none, 200, rng);
  // Clean block probability at n=8 with the default floor is >= 0.75; the
  // sampled rate should be in that ballpark.
  EXPECT_GT(result.success_rate, 0.7);
  EXPECT_EQ(result.mean_injected, 0.0);
}

TEST(NoisyPartial, SuccessDecreasesWithNoise) {
  Rng rng(8);
  const oracle::Database db = oracle::Database::with_qubits(8, 99);
  const auto clean = partial::run_noisy_partial_search(
      db, 2, NoiseModel{}, 150, rng);
  const auto noisy = partial::run_noisy_partial_search(
      db, 2, NoiseModel{NoiseKind::kDepolarizing, 0.02}, 150, rng);
  const auto very_noisy = partial::run_noisy_partial_search(
      db, 2, NoiseModel{NoiseKind::kDepolarizing, 0.2}, 150, rng);
  EXPECT_GT(clean.success_rate, noisy.success_rate - 0.08);
  EXPECT_GT(noisy.success_rate, very_noisy.success_rate);
  // Heavy depolarizing drives the block answer toward uniform (1/K = 1/4).
  EXPECT_LT(very_noisy.success_rate, 0.6);
  EXPECT_GT(very_noisy.mean_injected, clean.mean_injected);
}

TEST(NoisyPartial, PartialDegradesSlowerThanFullAtEqualPerQueryNoise) {
  // Partial search runs fewer queries, so fewer noise points: for the same
  // block question it should retain accuracy at least as well.
  Rng rng(9);
  const oracle::Database db = oracle::Database::with_qubits(10, 700);
  const NoiseModel model{NoiseKind::kDepolarizing, 0.01};
  const auto partial_run =
      partial::run_noisy_partial_search(db, 2, model, 600, rng);
  const auto full_run =
      partial::run_noisy_full_search_block(db, 2, model, 600, rng);
  EXPECT_LT(partial_run.queries_per_trial, full_run.queries_per_trial);
  EXPECT_GT(partial_run.success_rate, full_run.success_rate - 0.1);
}

}  // namespace
}  // namespace pqs::qsim

#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace pqs {
namespace {

TEST(RunningStats, MeanAndVarianceMatchDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats rs;
  for (const double x : xs) {
    rs.add(x);
  }
  const double mean = (1 + 2 + 4 + 8 + 16) / 5.0;
  double var = 0.0;
  for (const double x : xs) {
    var += (x - mean) * (x - mean);
  }
  var /= 4.0;
  EXPECT_DOUBLE_EQ(rs.mean(), mean);
  EXPECT_NEAR(rs.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 16.0);
  EXPECT_EQ(rs.count(), 5u);
}

TEST(RunningStats, EmptyMeanThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), CheckFailure);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats rs;
  rs.add(42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    whole.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  EXPECT_EQ(a.count(), 2u);

  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(9);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) {
    small.add(rng.normal());
  }
  for (int i = 0; i < 10000; ++i) {
    large.add(rng.normal());
  }
  EXPECT_LT(large.ci95_halfwidth(), small.ci95_halfwidth());
}

TEST(Histogram, BinningAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (half-open)
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, BinEdges) {
  Histogram h(-1.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), -1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), -0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 1.0);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75);
  h.add(0.8);
  const std::string r = h.render(10);
  EXPECT_NE(r.find('#'), std::string::npos);
  EXPECT_NE(r.find('2'), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), CheckFailure);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckFailure);
}

TEST(SignedBar, PositiveGoesRightNegativeGoesLeft) {
  const std::string pos = signed_bar(0.5, 1.0, 10);
  const std::string neg = signed_bar(-0.5, 1.0, 10);
  EXPECT_EQ(pos[10], '|');
  EXPECT_EQ(pos[11], '#');
  EXPECT_EQ(pos[9], ' ');
  EXPECT_EQ(neg[9], '#');
  EXPECT_EQ(neg[11], ' ');
}

TEST(SignedBar, FullScaleFillsHalfWidth) {
  const std::string bar = signed_bar(1.0, 1.0, 8);
  EXPECT_EQ(bar.size(), 17u);
  EXPECT_EQ(bar.back(), '#');
}

TEST(SignedBar, ClampsBeyondMax) {
  EXPECT_EQ(signed_bar(5.0, 1.0, 8), signed_bar(1.0, 1.0, 8));
}

}  // namespace
}  // namespace pqs

// pqs::obs metrics: instrument semantics (Counter/Gauge/AtomicHistogram),
// registry find-or-create identity and snapshot shape, EXACT fleet merging
// (merged histogram bucket counts equal the sum of per-shard counts — the
// router's `metrics` reducer contract), per-Service registry isolation, the
// Service's registry-served counters staying consistent with the legacy
// `stats()` view, and the net layer's connection counters over real TCP.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/histogram.h"
#include "common/json.h"
#include "common/timing.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "service/service.h"

namespace pqs {
namespace {

using namespace std::chrono_literals;
using obs::AtomicHistogram;
using obs::Counter;
using obs::Gauge;
using obs::MetricsRegistry;

// ---- instruments -----------------------------------------------------------

TEST(ObsCounterTest, AddValueReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsGaugeTest, SetAddAndNegativeValues) {
  Gauge gauge;
  gauge.set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
}

TEST(ObsAtomicHistogramTest, SnapshotMatchesPlainHistogram) {
  AtomicHistogram atomic;
  LogHistogram plain;
  const std::vector<std::uint64_t> values = {0, 1, 7, 8, 100, 1000000,
                                             std::uint64_t{1} << 40};
  for (std::uint64_t v : values) {
    atomic.record(v);
    plain.record(v);
  }
  const LogHistogram snap = atomic.snapshot();
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_EQ(snap.max(), plain.max());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(snap.percentile(q), plain.percentile(q)) << q;
  }
  EXPECT_EQ(snap.to_json().dump(), plain.to_json().dump());
}

TEST(ObsAtomicHistogramTest, ConcurrentRecordsAreAllCounted) {
  AtomicHistogram histogram;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        histogram.record(i * static_cast<std::uint64_t>(t + 1));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  EXPECT_EQ(histogram.snapshot().count(), kThreads * kPerThread);
  EXPECT_EQ(histogram.snapshot().max(), (kPerThread - 1) * kThreads);
}

// ---- histogram JSON round trip (the merge transport) -----------------------

TEST(ObsHistogramJsonTest, FromJsonRoundTripsExactly) {
  LogHistogram original;
  for (std::uint64_t v = 0; v < 4096; v += 7) {
    original.record(v * v);
  }
  const LogHistogram decoded = LogHistogram::from_json(original.to_json());
  EXPECT_EQ(decoded.count(), original.count());
  EXPECT_EQ(decoded.max(), original.max());
  EXPECT_EQ(decoded.to_json().dump(), original.to_json().dump());
}

TEST(ObsHistogramJsonTest, TamperedBucketBoundaryIsRejected) {
  LogHistogram histogram;
  histogram.record(100);
  Json json = histogram.to_json();
  // A lower bound that is not a real bucket boundary must be refused, not
  // silently snapped to the nearest bucket.
  Json bad_pair = Json::make_array();
  bad_pair.push_back(std::uint64_t{97});  // 97 is inside a bucket, not a lower
  bad_pair.push_back(std::uint64_t{1});
  Json buckets = Json::make_array();
  buckets.push_back(std::move(bad_pair));
  json["buckets"] = std::move(buckets);
  json["count"] = std::uint64_t{1};
  EXPECT_THROW((void)LogHistogram::from_json(json), CheckFailure);
}

// ---- registry --------------------------------------------------------------

TEST(ObsRegistryTest, FindOrCreateReturnsTheSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("service.submitted");
  Counter& b = registry.counter("service.submitted");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_NE(static_cast<void*>(&registry.counter("other")),
            static_cast<void*>(&a));
}

TEST(ObsRegistryTest, SnapshotShapeAndGaugeClamping) {
  MetricsRegistry registry;
  registry.counter("service.submitted").add(5);
  registry.gauge("service.queue_depth").set(3);
  registry.gauge("weird.negative").set(-17);  // clamped on the wire
  registry.histogram("latency.exec_ns").record(1000);

  const Json snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.at("counters").at("service.submitted").as_uint(), 5u);
  EXPECT_EQ(snapshot.at("gauges").at("service.queue_depth").as_uint(), 3u);
  EXPECT_EQ(snapshot.at("gauges").at("weird.negative").as_uint(), 0u);
  EXPECT_EQ(
      snapshot.at("histograms").at("latency.exec_ns").at("count").as_uint(),
      1u);
  // Canonical: two snapshots of the same state are byte-identical.
  EXPECT_EQ(snapshot.dump(), registry.snapshot().dump());
}

// ---- fleet merging (the router's `metrics` reducer) ------------------------

TEST(ObsMergeTest, MergedCountsAreExactSumsOfPerWorkerCounts) {
  // Three "workers" with deliberately different load shapes, plus one
  // reference registry that saw EVERY sample: the merged snapshot must
  // agree with the reference exactly, bucket for bucket.
  MetricsRegistry shard_a;
  MetricsRegistry shard_b;
  MetricsRegistry shard_c;
  MetricsRegistry reference;

  // Every worker serves the SAME workload distribution (uniform-by-rank
  // over [0, 1e6)) at different volumes — the realistic sharded-fleet
  // shape, and the precondition for the one-bucket percentile bound below.
  const auto feed = [&reference](MetricsRegistry& shard,
                                 std::uint64_t samples) {
    shard.counter("service.submitted").add(samples);
    reference.counter("service.submitted").add(samples);
    for (std::uint64_t i = 0; i < samples; ++i) {
      const std::uint64_t v = i * 1000000 / samples;
      shard.histogram("latency.exec_ns").record(v);
      reference.histogram("latency.exec_ns").record(v);
    }
  };
  feed(shard_a, 50);   // light shard
  feed(shard_b, 900);  // the widest shard dominates the distribution
  feed(shard_c, 200);
  shard_a.gauge("service.queue_depth").set(2);
  shard_b.gauge("service.queue_depth").set(5);
  // shard_c never registered the gauge: merging must not invent a zero read
  // from it, just sum the shards that have it.
  const Json b_snapshot = shard_b.snapshot();

  const Json merged = obs::merge_snapshots(
      {shard_a.snapshot(), b_snapshot, shard_c.snapshot()});

  EXPECT_EQ(merged.at("counters").at("service.submitted").as_uint(),
            50u + 900u + 200u);
  EXPECT_EQ(merged.at("gauges").at("service.queue_depth").as_uint(), 7u);

  const Json& merged_hist = merged.at("histograms").at("latency.exec_ns");
  EXPECT_EQ(merged_hist.at("count").as_uint(), 50u + 900u + 200u);
  // Bucket-exact: identical to the registry that saw every sample.
  const Json reference_hist =
      reference.snapshot().at("histograms").at("latency.exec_ns");
  EXPECT_EQ(merged_hist.dump(), reference_hist.dump());

  // Percentile sanity versus the widest shard: merging log-bucketed
  // histograms cannot displace a percentile by more than one bucket
  // relative to the dominant contributor.
  const LogHistogram merged_decoded = LogHistogram::from_json(merged_hist);
  const LogHistogram widest =
      LogHistogram::from_json(b_snapshot.at("histograms").at("latency.exec_ns"));
  for (double q : {0.5, 0.9, 0.99}) {
    const std::size_t merged_bucket =
        LogHistogram::bucket_index(merged_decoded.percentile(q));
    const std::size_t widest_bucket =
        LogHistogram::bucket_index(widest.percentile(q));
    EXPECT_LE(merged_bucket > widest_bucket ? merged_bucket - widest_bucket
                                            : widest_bucket - merged_bucket,
              1u)
        << "q=" << q;
  }
}

TEST(ObsMergeTest, EmptyAndSingletonMerges) {
  EXPECT_EQ(obs::merge_snapshots({}).at("counters").as_object().size(), 0u);
  MetricsRegistry registry;
  registry.counter("a").add(4);
  const Json snapshot = registry.snapshot();
  EXPECT_EQ(obs::merge_snapshots({snapshot}).dump(), snapshot.dump());
}

// ---- the Service on the registry -------------------------------------------

SearchSpec obs_test_spec(std::uint64_t seed) {
  SearchSpec spec = SearchSpec::single_target(64, 1, 9);
  spec.algorithm = "grover";
  spec.seed = seed;
  return spec;
}

TEST(ObsServiceTest, MetricsSnapshotServesCountersGaugesAndLatency) {
  Service service({.threads = 2});
  service.submit(obs_test_spec(1)).wait();
  service.submit(obs_test_spec(2)).wait();
  service.submit(obs_test_spec(2)).wait();  // result-cache hit

  const Json snapshot = service.metrics_snapshot();
  const Json& counters = snapshot.at("counters");
  EXPECT_EQ(counters.at("service.submitted").as_uint(), 3u);
  EXPECT_EQ(counters.at("service.cache_hits").as_uint(), 1u);
  EXPECT_EQ(counters.at("service.executed").as_uint(), 2u);
  EXPECT_EQ(counters.at("service.done").as_uint(), 2u);
  // Gauges are refreshed by metrics_snapshot(): all jobs settled.
  EXPECT_EQ(snapshot.at("gauges").at("service.queue_depth").as_uint(), 0u);
  EXPECT_EQ(snapshot.at("gauges").at("result_cache.size").as_uint(), 2u);
  // Cache-served repeats execute nothing: two latency samples, not three.
  for (const char* stage :
       {"latency.queue_ns", "latency.plan_ns", "latency.exec_ns"}) {
    EXPECT_EQ(snapshot.at("histograms").at(stage).at("count").as_uint(), 2u)
        << stage;
  }
  // The legacy stats() view and the registry agree — same instruments.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.executed, 2u);
}

TEST(ObsServiceTest, PrivateRegistriesStayIsolated) {
  Service first({.threads = 1});
  Service second({.threads = 1});
  first.submit(obs_test_spec(1)).wait();
  EXPECT_EQ(first.metrics().counter("service.submitted").value(), 1u);
  EXPECT_EQ(second.metrics().counter("service.submitted").value(), 0u);
}

TEST(ObsServiceTest, SharedRegistryAggregatesAcrossServices) {
  MetricsRegistry shared;
  Service first({.threads = 1, .metrics = &shared});
  Service second({.threads = 1, .metrics = &shared});
  first.submit(obs_test_spec(1)).wait();
  second.submit(obs_test_spec(2)).wait();
  EXPECT_EQ(shared.counter("service.submitted").value(), 2u);
}

// ---- net-layer counters over real TCP --------------------------------------

TEST(ObsNetTest, AcceptAndDisconnectCountsLandInTheRegistry) {
  MetricsRegistry registry;
  Service service({.threads = 1, .metrics = &registry});
  net::NetServer server(service,
                        {.listen = {"127.0.0.1", 0}, .metrics = &registry});
  server.start();
  {
    net::Socket socket =
        net::connect_with_retry({"127.0.0.1", server.port()}, 5000ms);
    net::LineReader reader(socket);
    ASSERT_TRUE(socket.write_all("{\"op\":\"stats\"}\n"));
    std::string line;
    ASSERT_TRUE(reader.next_line(line));
  }  // socket closes here
  // The disconnect is counted when the handler notices the peer is gone.
  Stopwatch watch;
  while (registry.counter("net.disconnects").value() == 0 &&
         watch.millis() < 10000) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(registry.counter("net.accepted_connections").value(), 1u);
  EXPECT_EQ(registry.counter("net.disconnects").value(), 1u);
  EXPECT_EQ(registry.counter("net.rejected_connections").value(), 0u);
  server.stop();
}

}  // namespace
}  // namespace pqs

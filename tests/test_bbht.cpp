#include "grover/bbht.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/stats.h"

namespace pqs::grover {
namespace {

TEST(Bbht, FindsUniqueMarkedItem) {
  Rng rng(7);
  const oracle::MarkedDatabase db(256, {173});
  int found = 0;
  for (int trial = 0; trial < 20; ++trial) {
    db.reset_queries();
    const auto result = search_unknown(db, rng);
    if (result.found.has_value()) {
      ASSERT_EQ(*result.found, 173u);
      ++found;
    }
  }
  EXPECT_GE(found, 19);  // failure within the 9 sqrt(N) budget is rare
}

TEST(Bbht, FindsOneOfManyMarkedItems) {
  Rng rng(11);
  const oracle::MarkedDatabase db(1024, {3, 77, 500, 900});
  const auto result = search_unknown(db, rng);
  ASSERT_TRUE(result.found.has_value());
  EXPECT_TRUE(db.peek(*result.found));
}

TEST(Bbht, ExpectedQueriesWithinTheoremBound) {
  Rng rng(13);
  const std::uint64_t n_items = 1024;
  for (const std::uint64_t m : {1u, 4u, 16u}) {
    std::vector<qsim::Index> marked;
    for (std::uint64_t i = 0; i < m; ++i) {
      marked.push_back(i * (n_items / m) + 5);
    }
    const oracle::MarkedDatabase db(n_items, marked);
    RunningStats stats;
    for (int trial = 0; trial < 60; ++trial) {
      db.reset_queries();
      const auto result = search_unknown(db, rng);
      ASSERT_TRUE(result.found.has_value());
      stats.add(static_cast<double>(result.queries));
    }
    EXPECT_LT(stats.mean(), bbht_expected_queries_bound(n_items, m))
        << "m=" << m;
  }
}

TEST(Bbht, MoreMarkedItemsMeansFewerQueries) {
  Rng rng(17);
  const auto mean_queries = [&rng](std::uint64_t marked_count) {
    std::vector<qsim::Index> marked;
    for (std::uint64_t i = 0; i < marked_count; ++i) {
      marked.push_back(i * 7 + 1);
    }
    const oracle::MarkedDatabase db(4096, marked);
    RunningStats stats;
    for (int trial = 0; trial < 40; ++trial) {
      db.reset_queries();
      const auto result = search_unknown(db, rng);
      EXPECT_TRUE(result.found.has_value());
      stats.add(static_cast<double>(result.queries));
    }
    return stats.mean();
  };
  EXPECT_LT(mean_queries(64), mean_queries(1));
}

TEST(Bbht, EmptyMarkedSetTerminatesWithinBudget) {
  Rng rng(19);
  const oracle::MarkedDatabase db(256, {});
  const auto result = search_unknown(db, rng);
  EXPECT_FALSE(result.found.has_value());
  EXPECT_LE(result.queries, static_cast<std::uint64_t>(9.0 * 16.0) + 32);
}

TEST(Bbht, CustomQueryBudgetRespected) {
  Rng rng(23);
  const oracle::MarkedDatabase db(256, {});
  BbhtOptions options;
  options.max_queries = 20;
  const auto result = search_unknown(db, rng, options);
  EXPECT_FALSE(result.found.has_value());
  EXPECT_LE(result.queries, 40u);  // budget + the last round's overshoot
}

TEST(Bbht, RejectsBadLambda) {
  Rng rng(29);
  const oracle::MarkedDatabase db(16, {1});
  BbhtOptions options;
  options.lambda = 2.0;
  EXPECT_THROW(search_unknown(db, rng, options), CheckFailure);
}

TEST(Bbht, RejectsNonPowerOfTwo) {
  Rng rng(31);
  const oracle::MarkedDatabase db(12, {1});
  EXPECT_THROW(search_unknown(db, rng), CheckFailure);
}

}  // namespace
}  // namespace pqs::grover

#include "qsim/measurement.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace pqs::qsim {
namespace {

TEST(Measurement, MeasureAllCollapsesToOutcome) {
  auto sv = StateVector::uniform(4);
  Rng rng(1);
  const Index outcome = measure_all(sv, rng);
  EXPECT_NEAR(sv.probability(outcome), 1.0, 1e-12);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
}

TEST(Measurement, MeasureAllOnBasisStateIsDeterministic) {
  Rng rng(2);
  for (Index x : {0u, 3u, 7u}) {
    auto sv = StateVector::basis(3, x);
    EXPECT_EQ(measure_all(sv, rng), x);
  }
}

TEST(Measurement, MeasureBlockCollapsesBlock) {
  auto sv = StateVector::uniform(5);
  Rng rng(3);
  const Index block = measure_block(sv, 2, rng);
  EXPECT_LT(block, 4u);
  EXPECT_NEAR(sv.block_probability(2, block), 1.0, 1e-12);
  // Within the block the state stays uniform.
  const std::size_t block_size = sv.dimension() >> 2;
  for (std::size_t i = 0; i < block_size; ++i) {
    EXPECT_NEAR(sv.probability(block * block_size + i), 1.0 / 8.0, 1e-12);
  }
}

TEST(Measurement, MeasureBlockValidatesK) {
  auto sv = StateVector::uniform(3);
  Rng rng(4);
  EXPECT_THROW(measure_block(sv, 0, rng), CheckFailure);
  EXPECT_THROW(measure_block(sv, 4, rng), CheckFailure);
}

TEST(Measurement, SampleCountsSumToShots) {
  const auto sv = StateVector::uniform(3);
  Rng rng(5);
  const auto counts = sample_counts(sv, 1000, rng);
  std::uint64_t total = 0;
  for (const auto& [outcome, count] : counts) {
    EXPECT_LT(outcome, 8u);
    total += count;
  }
  EXPECT_EQ(total, 1000u);
}

TEST(Measurement, EmpiricalBlockDistributionMatchesExact) {
  auto sv = StateVector::uniform(4);
  sv.phase_flip(13);
  sv.reflect_about_uniform();
  Rng rng(6);
  const auto empirical = empirical_block_distribution(sv, 2, 50000, rng);
  const auto exact = sv.block_distribution(2);
  ASSERT_EQ(empirical.size(), exact.size());
  for (std::size_t b = 0; b < exact.size(); ++b) {
    EXPECT_NEAR(empirical[b], exact[b], 0.02) << "block " << b;
  }
}

TEST(Measurement, EmpiricalDistributionNeedsShots) {
  const auto sv = StateVector::uniform(2);
  Rng rng(7);
  EXPECT_THROW(empirical_block_distribution(sv, 1, 0, rng), CheckFailure);
}

}  // namespace
}  // namespace pqs::qsim

// Cross-module integration tests: the different realizations of the same
// mathematics (state-vector kernels, gate-level circuits, the 3-D subspace
// model, closed forms) must all agree, and the end-to-end pipelines must
// compose.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/math.h"
#include "common/random.h"
#include "grover/exact.h"
#include "grover/grover.h"
#include "oracle/database.h"
#include "oracle/merit_list.h"
#include "partial/analytic.h"
#include "partial/bounds.h"
#include "partial/certainty.h"
#include "partial/grk.h"
#include "partial/optimizer.h"
#include "qsim/circuit.h"
#include "qsim/diffusion.h"
#include "reduction/reduction.h"
#include "zalka/zalka.h"

namespace pqs {
namespace {

class ModelVsStateVector
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(ModelVsStateVector, AgreeAtEveryStepOfTheAlgorithm) {
  // The strongest consistency check in the library: evolve the full
  // state vector and the 3-D model through the identical op sequence and
  // compare all three invariant-subspace amplitudes after every operation.
  const auto [n, k] = GetParam();
  const std::uint64_t n_items = pow2(n);
  const std::uint64_t k_blocks = pow2(k);
  const qsim::Index target = n_items / 2 + 3;  // block K/2

  const oracle::Database db(n_items, target);
  const partial::SubspaceModel model(n_items, k_blocks);

  auto state = qsim::StateVector::uniform(n);
  auto s = model.uniform_start();

  const auto check_agreement = [&](const char* where) {
    // a_t.
    ASSERT_LT(std::abs(state.amplitude(target) - s.a_t), 1e-10) << where;
    // a_b via a representative target-block non-target state.
    const double w_b = model.weight_target_rest();
    ASSERT_LT(std::abs(state.amplitude(target + 1) - s.a_b / w_b), 1e-10)
        << where;
    // a_o via a representative non-target-block state.
    const double w_o = model.weight_non_target();
    ASSERT_LT(std::abs(state.amplitude(0) - s.a_o / w_o), 1e-10) << where;
  };

  check_agreement("start");
  for (int i = 0; i < 12; ++i) {
    db.apply_phase_oracle(state);
    state.reflect_about_uniform();
    s = model.apply_global(s);
    check_agreement("global");
  }
  for (int i = 0; i < 6; ++i) {
    db.apply_phase_oracle(state);
    state.reflect_blocks_about_uniform(k);
    s = model.apply_local(s);
    check_agreement("local");
  }
  // A generalized local iteration with arbitrary phases.
  db.apply_phase_oracle(state, 0.83);
  state.rotate_blocks_about_uniform(k, 2.31);
  s = model.apply_local_generalized(s, 0.83, 2.31);
  check_agreement("generalized");
  // Step 3.
  state.reflect_non_target_about_their_mean(target);
  s = model.apply_step3(s);
  check_agreement("step3");
}

INSTANTIATE_TEST_SUITE_P(Shapes, ModelVsStateVector,
                         ::testing::Values(std::tuple{4u, 1u},
                                           std::tuple{6u, 2u},
                                           std::tuple{8u, 3u},
                                           std::tuple{10u, 2u},
                                           std::tuple{10u, 5u},
                                           std::tuple{12u, 4u}));

TEST(Integration, GateLevelGrkMatchesKernelGrk) {
  // Run the entire partial-search pipeline once with fused kernels and once
  // with the gate-level diffusion decompositions.
  const unsigned n = 8, k = 2;
  const oracle::Database db = oracle::Database::with_qubits(n, 55);
  const std::uint64_t l1 = 6, l2 = 3;

  auto kernel_state = qsim::StateVector::uniform(n);
  auto gate_state = qsim::StateVector::uniform(n);
  for (std::uint64_t i = 0; i < l1; ++i) {
    kernel_state.phase_flip(55);
    kernel_state.reflect_about_uniform();
    gate_state.phase_flip(55);
    qsim::apply_global_diffusion_gate_level(gate_state);
  }
  for (std::uint64_t i = 0; i < l2; ++i) {
    kernel_state.phase_flip(55);
    kernel_state.reflect_blocks_about_uniform(k);
    gate_state.phase_flip(55);
    qsim::apply_block_diffusion_gate_level(gate_state, k);
  }
  kernel_state.reflect_non_target_about_their_mean(55);
  gate_state.reflect_non_target_about_their_mean(55);
  EXPECT_LT(kernel_state.linf_distance(gate_state), 1e-11);
}

TEST(Integration, CircuitIrReproducesGrkEvolution) {
  const unsigned n = 9, k = 3;
  const oracle::Database db = oracle::Database::with_qubits(n, 300);
  const std::uint64_t l1 = 10, l2 = 4;

  qsim::Circuit circuit(n);
  for (std::uint64_t i = 0; i < l1; ++i) {
    circuit.grover_iteration();
  }
  for (std::uint64_t i = 0; i < l2; ++i) {
    circuit.partial_iteration(k);
  }
  circuit.non_target_mean_reflection();

  auto circuit_state = qsim::StateVector::uniform(n);
  const auto queries = circuit.apply(circuit_state, db.view());
  EXPECT_EQ(queries, l1 + l2 + 1);

  const auto direct = partial::evolve_partial_search(db, k, l1, l2);
  EXPECT_LT(circuit_state.linf_distance(direct), 1e-11);
}

TEST(Integration, PartialPlusSuffixSearchRecoversFullTarget) {
  // Partial search tells us the block; a full search restricted to that
  // block finds the rest — and the total stays below a direct full search
  // experience... total query check included.
  Rng rng(321);
  const unsigned n = 12, k = 4;
  const qsim::Index target = 3210;
  const oracle::Database db = oracle::Database::with_qubits(n, target);

  const auto part = partial::run_partial_search_certain(db, k, rng);
  ASSERT_TRUE(part.correct);

  // Suffix database: the low n-k bits within the found block.
  const oracle::Database suffix_db(pow2(n - k), target & (pow2(n - k) - 1));
  const auto rest = grover::search_exact(suffix_db, rng);
  ASSERT_TRUE(rest.correct);

  const qsim::Index reconstructed =
      (part.measured_block << (n - k)) | rest.measured;
  EXPECT_EQ(reconstructed, target);
}

TEST(Integration, SavingsOrderingAcrossAllMethods) {
  // At n = 16: lower bound <= certainty partial <= plain-optimal partial
  // cannot be guaranteed pointwise, but all partial variants must beat full
  // search, which must beat every classical count.
  const unsigned n = 16;
  const std::uint64_t n_items = pow2(n);
  const std::uint64_t k_blocks = 4;

  const auto partial_opt = partial::optimize_integer(
      n_items, k_blocks, partial::default_min_success(n_items));
  const auto certain = partial::certainty_schedule(n_items, k_blocks);
  const auto full_exact = grover::exact_query_count(n_items);
  const double classical =
      partial::classical_partial_randomized_paper(n_items, k_blocks);

  EXPECT_LT(partial_opt.queries, full_exact);
  EXPECT_LT(certain.queries, full_exact);
  EXPECT_LT(static_cast<double>(full_exact), classical);
}

TEST(Integration, ZalkaFloorConsistentWithPartialLowerBound) {
  // Theorem 2 machinery end-to-end at small scale: the measured zero-error
  // reduction total, divided by the geometric factor, lower-bounds the
  // per-level partial-search cost the way the proof requires.
  Rng rng(654);
  const unsigned n = 12;
  const std::uint64_t k_blocks = 4;
  const std::uint64_t n_items = pow2(n);

  const oracle::Database db = oracle::Database::with_qubits(n, 1000);
  const auto reduction_run =
      reduction::search_full_via_partial(db, 2, rng);
  ASSERT_TRUE(reduction_run.correct);

  // total >= (pi/4) sqrt(N) (1 - o(1)) must transfer a floor to the top
  // level: top-level queries >= total - (everything below), and the
  // geometric sum of the lower levels is <= total/sqrt(K) + O(sqrt(N/K)).
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  const double top_coeff =
      static_cast<double>(reduction_run.levels.front().queries) / sqrt_n;
  EXPECT_GT(top_coeff,
            partial::lower_bound_coefficient(k_blocks) - 0.12);
}

TEST(Integration, EndToEndMeritListScenario) {
  // The intro example as a full pipeline on the library's public API.
  Rng rng(777);
  const oracle::MeritList list(pow2(10), /*seed=*/2024);
  const std::string student = list.name_at_rank(700);

  const oracle::Database db = list.database_for(student);
  const auto result = partial::run_partial_search_certain(db, 2, rng);
  ASSERT_TRUE(result.correct);
  // Rank 700 of 1024 -> third quartile = block 2.
  EXPECT_EQ(result.measured_block, 2u);
  EXPECT_EQ(oracle::MeritList::fraction_label(result.measured_block, 4),
            "50%-75% band");
  EXPECT_LT(db.queries(), grover::optimal_iterations(db.size()));
}

}  // namespace
}  // namespace pqs

#include "qsim/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/math.h"
#include "common/random.h"
#include "qsim/isa.h"
#include "qsim/soa.h"

namespace pqs::qsim {
namespace {

std::vector<Amplitude> random_state(unsigned n_qubits, Rng& rng) {
  std::vector<Amplitude> amps(pow2(n_qubits));
  for (auto& a : amps) {
    a = Amplitude{rng.normal(), rng.normal()};
  }
  const double norm = std::sqrt(kernels::norm_squared(amps));
  kernels::scale(amps, Amplitude{1.0 / norm, 0.0});
  return amps;
}

TEST(Kernels, Gate1OnBasisStates) {
  // X on qubit 1 of |00> gives |10> (index 2).
  std::vector<Amplitude> amps(4, Amplitude{0.0, 0.0});
  amps[0] = 1.0;
  kernels::apply_gate1(amps, 2, 1, gates::X());
  EXPECT_NEAR(std::abs(amps[2]), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(amps[0]), 0.0, 1e-12);
}

TEST(Kernels, Gate1PreservesNorm) {
  Rng rng(3);
  for (unsigned n = 1; n <= 6; ++n) {
    auto amps = random_state(n, rng);
    for (unsigned q = 0; q < n; ++q) {
      kernels::apply_gate1(amps, n, q, gates::Ry(0.37 * (q + 1)));
    }
    EXPECT_NEAR(kernels::norm_squared(amps), 1.0, 1e-10);
  }
}

TEST(Kernels, Gate1CommutesOnDistinctQubits) {
  Rng rng(5);
  auto a = random_state(4, rng);
  auto b = a;
  kernels::apply_gate1(a, 4, 0, gates::H());
  kernels::apply_gate1(a, 4, 3, gates::T());
  kernels::apply_gate1(b, 4, 3, gates::T());
  kernels::apply_gate1(b, 4, 0, gates::H());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(std::abs(a[i] - b[i]), 1e-12);
  }
}

TEST(Kernels, Gate1RejectsBadArguments) {
  std::vector<Amplitude> amps(4);
  EXPECT_THROW(kernels::apply_gate1(amps, 2, 2, gates::X()), CheckFailure);
  EXPECT_THROW(kernels::apply_gate1(amps, 3, 0, gates::X()), CheckFailure);
}

TEST(Kernels, ControlledGateActsOnlyWhenControlsSet) {
  // CNOT with control qubit 0, target qubit 1.
  std::vector<Amplitude> amps(4, Amplitude{0.0, 0.0});
  amps[1] = 1.0;  // |01>: control (bit 0) is 1
  kernels::apply_controlled_gate1(amps, 2, 0b01, 1, gates::X());
  EXPECT_NEAR(std::abs(amps[3]), 1.0, 1e-12);  // -> |11>

  std::fill(amps.begin(), amps.end(), Amplitude{0.0, 0.0});
  amps[0] = 1.0;  // |00>: control clear -> no-op
  kernels::apply_controlled_gate1(amps, 2, 0b01, 1, gates::X());
  EXPECT_NEAR(std::abs(amps[0]), 1.0, 1e-12);
}

TEST(Kernels, ControlledGateRejectsSelfControl) {
  std::vector<Amplitude> amps(4);
  EXPECT_THROW(kernels::apply_controlled_gate1(amps, 2, 0b10, 1, gates::X()),
               CheckFailure);
}

TEST(Kernels, MultiControlledGate) {
  // Toffoli: controls 0 and 1, target 2.
  std::vector<Amplitude> amps(8, Amplitude{0.0, 0.0});
  amps[3] = 1.0;  // |011>
  kernels::apply_controlled_gate1(amps, 3, 0b011, 2, gates::X());
  EXPECT_NEAR(std::abs(amps[7]), 1.0, 1e-12);  // -> |111>
}

TEST(Kernels, PhaseFlipIndexIsInvolutive) {
  Rng rng(7);
  auto amps = random_state(4, rng);
  const auto before = amps;
  kernels::phase_flip_index(amps, 5);
  EXPECT_LT(std::abs(amps[5] + before[5]), 1e-15);
  kernels::phase_flip_index(amps, 5);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    EXPECT_LT(std::abs(amps[i] - before[i]), 1e-15);
  }
}

TEST(Kernels, PhaseRotateIndexAtPiEqualsFlip) {
  Rng rng(9);
  auto a = random_state(3, rng);
  auto b = a;
  kernels::phase_flip_index(a, 2);
  kernels::phase_rotate_index(b, 2, kPi);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(std::abs(a[i] - b[i]), 1e-12);
  }
}

TEST(Kernels, PhaseFlipIfMatchesPredicate) {
  Rng rng(11);
  auto amps = random_state(4, rng);
  const auto before = amps;
  kernels::phase_flip_if(amps, [](Index x) { return x % 3 == 0; });
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_LT(std::abs(amps[i] + before[i]), 1e-15);
    } else {
      EXPECT_LT(std::abs(amps[i] - before[i]), 1e-15);
    }
  }
}

TEST(Kernels, PhaseFlipMaskMatchesAllOnesOnly) {
  Rng rng(13);
  auto amps = random_state(3, rng);
  const auto before = amps;
  kernels::phase_flip_mask_all_ones(amps, 0b101);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    const bool flipped = (i & 0b101u) == 0b101u;
    EXPECT_LT(std::abs(amps[i] - (flipped ? -before[i] : before[i])), 1e-15);
  }
}

TEST(Kernels, ReflectAboutUniformFixesUniform) {
  const double amp = 1.0 / std::sqrt(8.0);
  std::vector<Amplitude> amps(8, Amplitude{amp, 0.0});
  kernels::reflect_about_uniform(amps);
  for (const auto& a : amps) {
    EXPECT_LT(std::abs(a - Amplitude{amp, 0.0}), 1e-14);
  }
}

TEST(Kernels, ReflectAboutUniformNegatesOrthogonalComponent) {
  // A vector orthogonal to uniform (sum zero) should be fully negated.
  std::vector<Amplitude> amps{{1.0, 0.0}, {-1.0, 0.0}, {0.5, 0.0}, {-0.5, 0.0}};
  const auto before = amps;
  kernels::reflect_about_uniform(amps);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    EXPECT_LT(std::abs(amps[i] + before[i]), 1e-14);
  }
}

TEST(Kernels, ReflectAboutUniformIsInvolutive) {
  Rng rng(17);
  auto amps = random_state(5, rng);
  const auto before = amps;
  kernels::reflect_about_uniform(amps);
  kernels::reflect_about_uniform(amps);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    EXPECT_LT(std::abs(amps[i] - before[i]), 1e-12);
  }
}

TEST(Kernels, BlockReflectEqualsGlobalWhenOneBlock) {
  Rng rng(19);
  auto a = random_state(4, rng);
  auto b = a;
  kernels::reflect_about_uniform(a);
  kernels::reflect_blocks_about_uniform(b, b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(std::abs(a[i] - b[i]), 1e-13);
  }
}

TEST(Kernels, BlockReflectActsIndependentlyPerBlock) {
  Rng rng(23);
  auto amps = random_state(4, rng);  // 16 amplitudes, 4 blocks of 4
  auto expected = amps;
  kernels::reflect_blocks_about_uniform(amps, 4);
  for (std::size_t b = 0; b < 4; ++b) {
    std::vector<Amplitude> block(expected.begin() + static_cast<long>(4 * b),
                                 expected.begin() + static_cast<long>(4 * b + 4));
    kernels::reflect_about_uniform(block);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_LT(std::abs(amps[4 * b + i] - block[i]), 1e-13);
    }
  }
}

TEST(Kernels, BlockReflectRejectsNonDivisor) {
  std::vector<Amplitude> amps(8);
  EXPECT_THROW(kernels::reflect_blocks_about_uniform(amps, 3), CheckFailure);
}

TEST(Kernels, RotateBlocksAtPiEqualsMinusReflection) {
  Rng rng(29);
  auto a = random_state(4, rng);
  auto b = a;
  kernels::reflect_blocks_about_uniform(a, 4);
  kernels::rotate_blocks_about_uniform(b, 4, kPi);
  // rotate(pi) = I - 2|u><u| = -(2|u><u| - I).
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(std::abs(a[i] + b[i]), 1e-12);
  }
}

TEST(Kernels, RotateBlocksAtZeroIsIdentity) {
  Rng rng(31);
  auto amps = random_state(3, rng);
  const auto before = amps;
  kernels::rotate_blocks_about_uniform(amps, 4, 0.0);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    EXPECT_LT(std::abs(amps[i] - before[i]), 1e-14);
  }
}

TEST(Kernels, RotateBlocksPreservesNorm) {
  Rng rng(37);
  auto amps = random_state(5, rng);
  kernels::rotate_blocks_about_uniform(amps, 8, 1.234);
  EXPECT_NEAR(kernels::norm_squared(amps), 1.0, 1e-12);
}

TEST(Kernels, ReflectAboutStateMatchesUniformSpecialCase) {
  Rng rng(41);
  auto a = random_state(4, rng);
  auto b = a;
  std::vector<Amplitude> axis(16, Amplitude{0.25, 0.0});  // uniform, unit
  kernels::reflect_about_uniform(a);
  kernels::reflect_about_state(b, axis);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(std::abs(a[i] - b[i]), 1e-12);
  }
}

TEST(Kernels, ReflectAboutStateRequiresUnitAxis) {
  std::vector<Amplitude> amps(4, Amplitude{0.5, 0.0});
  std::vector<Amplitude> axis(4, Amplitude{0.5, 0.5});  // norm 2
  EXPECT_THROW(kernels::reflect_about_state(amps, axis), CheckFailure);
}

TEST(Kernels, NonTargetMeanReflectLeavesTargetUntouched) {
  Rng rng(43);
  auto amps = random_state(4, rng);
  const Amplitude target_before = amps[9];
  kernels::reflect_non_target_about_their_mean(amps, 9);
  EXPECT_LT(std::abs(amps[9] - target_before), 1e-15);
}

TEST(Kernels, NonTargetMeanReflectPreservesNorm) {
  Rng rng(47);
  auto amps = random_state(5, rng);
  kernels::reflect_non_target_about_their_mean(amps, 0);
  EXPECT_NEAR(kernels::norm_squared(amps), 1.0, 1e-12);
}

TEST(Kernels, NonTargetMeanReflectZeroesEqualAmplitudes) {
  // If all non-target amplitudes equal 2 mu - a = a, they are fixed; but if
  // they are all equal the reflection maps each a to 2a - a = a. The key
  // partial-search property: when the non-target mean is exactly half of a
  // uniform non-target amplitude... construct the Step-2 pattern directly:
  // non-target-block states with amplitude c, target-block rest with
  // amplitude b chosen so the overall mean is c/2 -> all become ... instead,
  // verify the defining identity a' = 2*mean - a on the non-target set.
  std::vector<Amplitude> amps{{0.9, 0.0}, {0.1, 0.0}, {0.3, 0.0}, {-0.1, 0.0}};
  const Index t = 0;
  const Amplitude mean = (amps[1] + amps[2] + amps[3]) / 3.0;
  auto expected = amps;
  for (std::size_t i = 1; i < 4; ++i) {
    expected[i] = 2.0 * mean - amps[i];
  }
  kernels::reflect_non_target_about_their_mean(amps, t);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(std::abs(amps[i] - expected[i]), 1e-14);
  }
}

TEST(Kernels, InnerProductOrthonormalBasis) {
  std::vector<Amplitude> e0{{1.0, 0.0}, {0.0, 0.0}};
  std::vector<Amplitude> e1{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_LT(std::abs(kernels::inner_product(e0, e1)), 1e-15);
  EXPECT_LT(std::abs(kernels::inner_product(e0, e0) - Amplitude{1.0, 0.0}),
            1e-15);
}

TEST(Kernels, InnerProductConjugatesFirstArgument) {
  std::vector<Amplitude> a{{0.0, 1.0}};  // i
  std::vector<Amplitude> b{{1.0, 0.0}};  // 1
  // <a|b> = conj(i) * 1 = -i.
  EXPECT_LT(std::abs(kernels::inner_product(a, b) - Amplitude{0.0, -1.0}),
            1e-15);
}

TEST(Kernels, ScaleMultipliesEverything) {
  std::vector<Amplitude> amps{{1.0, 0.0}, {2.0, 0.0}};
  kernels::scale(amps, Amplitude{0.0, 1.0});
  EXPECT_LT(std::abs(amps[0] - Amplitude{0.0, 1.0}), 1e-15);
  EXPECT_LT(std::abs(amps[1] - Amplitude{0.0, 2.0}), 1e-15);
}

// ---- ISA-parametrized SoA/span equivalence sweep ---------------------------
//
// Every SoA kernel must agree with its span reference implementation to
// 1e-10 on every tier compiled into this binary AND supported by this CPU
// (qsim/isa.h). The sweep runs on random non-uniform states, non-power-of-
// two sizes (SIMD tail paths), and n = 1 (N = 2, smaller than one vector
// register). CI pins PQS_ISA=scalar and PQS_ISA=avx2 jobs so the narrower
// tiers stay covered even when the runner has wider hardware.

constexpr double kTierTol = 1e-10;

std::vector<Amplitude> random_amps(std::size_t size, Rng& rng) {
  std::vector<Amplitude> amps(size);
  for (auto& a : amps) {
    a = Amplitude{rng.normal(), rng.normal()};
  }
  return amps;
}

void expect_matches(const SoaVector& v, const std::vector<Amplitude>& ref,
                    double tol = kTierTol) {
  ASSERT_EQ(v.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_LT(std::abs(v.get(i) - ref[i]), tol) << "at index " << i;
  }
}

class IsaSweep : public ::testing::TestWithParam<Isa> {
 protected:
  void SetUp() override { force_isa(GetParam()); }
  void TearDown() override { force_isa(std::nullopt); }
};

TEST_P(IsaSweep, ForceIsaControlsDispatch) {
  EXPECT_EQ(active_isa(), GetParam());
  EXPECT_TRUE(isa_supported(GetParam()));
}

TEST_P(IsaSweep, ReflectAboutUniformMatchesReferenceOnOddSizes) {
  Rng rng(101);
  // 1 and 6 are smaller than a vector register; 1000 and 4100 exercise the
  // chunked pairwise reduction's tails (kChunk = 4096 inside kernels_soa).
  for (const std::size_t size : {std::size_t{1}, std::size_t{2},
                                 std::size_t{6}, std::size_t{1000},
                                 std::size_t{4100}, std::size_t{8192}}) {
    auto ref = random_amps(size, rng);
    SoaVector v = SoaVector::from_amplitudes(ref);
    kernels::reflect_about_uniform(std::span<Amplitude>(ref));
    kernels::reflect_about_uniform(v);
    expect_matches(v, ref);
  }
}

TEST_P(IsaSweep, BlockReflectMatchesReference) {
  Rng rng(103);
  const std::size_t size = 6000;  // 1000-wide blocks have SIMD tails
  for (const std::size_t bs : {std::size_t{1}, std::size_t{4},
                               std::size_t{1000}, std::size_t{6000}}) {
    auto ref = random_amps(size, rng);
    SoaVector v = SoaVector::from_amplitudes(ref);
    kernels::reflect_blocks_about_uniform(std::span<Amplitude>(ref), bs);
    kernels::reflect_blocks_about_uniform(v, bs);
    expect_matches(v, ref);
  }
}

TEST_P(IsaSweep, RotateBlocksMatchesReference) {
  Rng rng(107);
  auto ref = random_amps(6000, rng);
  SoaVector v = SoaVector::from_amplitudes(ref);
  kernels::rotate_blocks_about_uniform(std::span<Amplitude>(ref), 1000, 0.77);
  kernels::rotate_blocks_about_uniform(v, 1000, 0.77);
  expect_matches(v, ref);
}

TEST_P(IsaSweep, Gate1MatchesReferenceAcrossStrides) {
  Rng rng(109);
  for (unsigned n = 1; n <= 5; ++n) {  // n = 1: N = 2, below register width
    auto ref = random_amps(pow2(n), rng);
    SoaVector v = SoaVector::from_amplitudes(ref);
    for (unsigned q = 0; q < n; ++q) {  // strides 1, 2, 4, ...
      const Gate2 g = gates::Ry(0.41 * (q + 1));
      kernels::apply_gate1(std::span<Amplitude>(ref), n, q, g);
      kernels::apply_gate1(v, n, q, g);
    }
    expect_matches(v, ref);
  }
}

TEST_P(IsaSweep, ControlledGate1MatchesReference) {
  Rng rng(113);
  auto ref = random_amps(16, rng);
  SoaVector v = SoaVector::from_amplitudes(ref);
  for (const std::uint64_t mask : {0b0001ULL, 0b1010ULL}) {
    kernels::apply_controlled_gate1(std::span<Amplitude>(ref), 4, mask, 2,
                                    gates::H());
    kernels::apply_controlled_gate1(v, 4, mask, 2, gates::H());
  }
  expect_matches(v, ref);
}

TEST_P(IsaSweep, PhaseKernelsMatchReference) {
  Rng rng(127);
  auto ref = random_amps(32, rng);
  SoaVector v = SoaVector::from_amplitudes(ref);
  const std::vector<Index> marked{3, 17, 31};
  kernels::phase_flip_indices(std::span<Amplitude>(ref), marked);
  kernels::phase_flip_indices(v, marked);
  kernels::phase_rotate_indices(std::span<Amplitude>(ref), marked, 1.1);
  kernels::phase_rotate_indices(v, marked, 1.1);
  kernels::phase_flip_mask_all_ones(std::span<Amplitude>(ref), 0b10100);
  kernels::phase_flip_mask_all_ones(v, 0b10100);
  const auto pred = [](Index x) { return x % 5 == 2; };
  kernels::phase_flip_if(std::span<Amplitude>(ref), pred);
  kernels::phase_flip_if(v, pred);
  kernels::scale(std::span<Amplitude>(ref), Amplitude{0.6, -0.8});
  kernels::scale(v, Amplitude{0.6, -0.8});
  expect_matches(v, ref);
}

TEST_P(IsaSweep, FusedSumCacheSurvivesOracleInterleaving) {
  // The Grover inner loop: oracle phase flips (incremental O(1) cache
  // deltas) interleaved with block reflections (cache read + refresh).
  // Any cache-maintenance bug compounds over iterations, so compare
  // against the span reference after every step for many iterations.
  Rng rng(131);
  const std::size_t size = 2048;
  auto ref = random_amps(size, rng);
  SoaVector v = SoaVector::from_amplitudes(ref);
  const std::vector<Index> marked{5, 700, 1500};
  for (int iter = 0; iter < 50; ++iter) {
    kernels::phase_flip_indices(std::span<Amplitude>(ref), marked);
    kernels::phase_flip_indices(v, marked);
    kernels::reflect_blocks_about_uniform(std::span<Amplitude>(ref), 256);
    kernels::reflect_blocks_about_uniform(v, 256);
    ASSERT_NO_FATAL_FAILURE(expect_matches(v, ref)) << "iteration " << iter;
  }
  // Switch partitions mid-run (cache must not leak across block sizes),
  // then hammer the generalized-phase pair.
  for (int iter = 0; iter < 20; ++iter) {
    kernels::phase_rotate_indices(std::span<Amplitude>(ref), marked, 0.3);
    kernels::phase_rotate_indices(v, marked, 0.3);
    kernels::reflect_about_uniform(std::span<Amplitude>(ref));
    kernels::reflect_about_uniform(v);
    kernels::rotate_blocks_about_uniform(std::span<Amplitude>(ref), 512, 2.2);
    kernels::rotate_blocks_about_uniform(v, 512, 2.2);
    ASSERT_NO_FATAL_FAILURE(expect_matches(v, ref)) << "iteration " << iter;
  }
}

TEST_P(IsaSweep, MeanReflectionsMatchReference) {
  Rng rng(137);
  auto ref = random_amps(1000, rng);
  SoaVector v = SoaVector::from_amplitudes(ref);
  kernels::reflect_non_target_about_their_mean(std::span<Amplitude>(ref), 123);
  kernels::reflect_non_target_about_their_mean(v, 123);
  expect_matches(v, ref);
  const std::vector<Index> marked{0, 11, 999};
  kernels::reflect_unmarked_about_their_mean(std::span<Amplitude>(ref), marked);
  kernels::reflect_unmarked_about_their_mean(v, marked);
  expect_matches(v, ref);
}

TEST_P(IsaSweep, ReductionsMatchReference) {
  Rng rng(139);
  for (const std::size_t size :
       {std::size_t{1}, std::size_t{7}, std::size_t{4100}}) {
    auto ref = random_amps(size, rng);
    auto ref_b = random_amps(size, rng);
    SoaVector v = SoaVector::from_amplitudes(ref);
    SoaVector vb = SoaVector::from_amplitudes(ref_b);
    EXPECT_NEAR(kernels::norm_squared(v), kernels::norm_squared(ref),
                kTierTol);
    EXPECT_LT(std::abs(kernels::sum_all(v) - kernels::sum_pairwise(ref)),
              kTierTol);
    EXPECT_LT(std::abs(kernels::inner_product(v, vb) -
                       kernels::inner_product(ref, ref_b)),
              kTierTol);
    if (size > 2) {
      EXPECT_NEAR(kernels::norm_squared_range(v, 1, size - 2),
                  kernels::norm_squared(std::span<const Amplitude>(ref).subspan(
                      1, size - 2)),
                  kTierTol);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SupportedTiers, IsaSweep, ::testing::ValuesIn(supported_isas()),
    [](const ::testing::TestParamInfo<Isa>& info) {
      return std::string(isa_name(info.param));
    });

}  // namespace
}  // namespace pqs::qsim

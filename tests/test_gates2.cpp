#include "qsim/gates2.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "common/random.h"
#include "qsim/kernels.h"
#include "qsim/state_vector.h"

namespace pqs::qsim {
namespace {

std::vector<Amplitude> random_amps(unsigned n_qubits, Rng& rng) {
  std::vector<Amplitude> amps(pow2(n_qubits));
  for (auto& a : amps) {
    a = Amplitude{rng.normal(), rng.normal()};
  }
  const double norm = std::sqrt(kernels::norm_squared(amps));
  kernels::scale(amps, Amplitude{1.0 / norm, 0.0});
  return amps;
}

class NamedGate4Test : public ::testing::TestWithParam<Gate4> {};

TEST_P(NamedGate4Test, IsUnitary) {
  EXPECT_LT(GetParam().unitarity_defect(), 1e-12) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    TwoQubitGates, NamedGate4Test,
    ::testing::Values(gates::II(), gates::CNOT(), gates::CZ(),
                      gates::CPhase(0.7), gates::SWAP(), gates::ISWAP(),
                      gates::tensor(gates::H(), gates::T())),
    [](const ::testing::TestParamInfo<Gate4>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name + "_" + std::to_string(info.index);
    });

TEST(Gate4, CnotTruthTable) {
  // |10> -> |11>, |11> -> |10>, |0x> fixed (high qubit is the control).
  std::vector<Amplitude> amps(4, Amplitude{0.0, 0.0});
  amps[2] = 1.0;  // |10>: control (qubit 1) set
  kernels::apply_gate2(amps, 2, /*q_high=*/1, /*q_low=*/0, gates::CNOT());
  EXPECT_NEAR(std::abs(amps[3]), 1.0, 1e-12);

  std::fill(amps.begin(), amps.end(), Amplitude{0.0, 0.0});
  amps[1] = 1.0;  // |01>: control clear
  kernels::apply_gate2(amps, 2, 1, 0, gates::CNOT());
  EXPECT_NEAR(std::abs(amps[1]), 1.0, 1e-12);
}

TEST(Gate4, CnotMatchesControlledGate1Kernel) {
  Rng rng(11);
  auto a = random_amps(5, rng);
  auto b = a;
  kernels::apply_gate2(a, 5, /*q_high=*/3, /*q_low=*/1, gates::CNOT());
  kernels::apply_controlled_gate1(b, 5, /*control_mask=*/1u << 3, 1,
                                  gates::X());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_LT(std::abs(a[i] - b[i]), 1e-12) << i;
  }
}

TEST(Gate4, CzIsSymmetricInItsQubits) {
  Rng rng(13);
  auto a = random_amps(4, rng);
  auto b = a;
  kernels::apply_gate2(a, 4, 2, 0, gates::CZ());
  kernels::apply_gate2(b, 4, 0, 2, gates::CZ());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_LT(std::abs(a[i] - b[i]), 1e-12);
  }
}

TEST(Gate4, SwapExchangesQubitValues) {
  std::vector<Amplitude> amps(8, Amplitude{0.0, 0.0});
  amps[0b001] = 1.0;
  kernels::apply_gate2(amps, 3, /*q_high=*/2, /*q_low=*/0, gates::SWAP());
  EXPECT_NEAR(std::abs(amps[0b100]), 1.0, 1e-12);
}

TEST(Gate4, SwapEqualsThreeCnots) {
  Rng rng(17);
  auto a = random_amps(4, rng);
  auto b = a;
  kernels::apply_gate2(a, 4, 3, 1, gates::SWAP());
  kernels::apply_gate2(b, 4, 3, 1, gates::CNOT());
  kernels::apply_gate2(b, 4, 1, 3, gates::CNOT());
  kernels::apply_gate2(b, 4, 3, 1, gates::CNOT());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_LT(std::abs(a[i] - b[i]), 1e-12);
  }
}

TEST(Gate4, CPhaseAtPiIsCz) {
  EXPECT_LT(gates::CPhase(kPi).distance(gates::CZ()), 1e-12);
}

TEST(Gate4, TensorActsIndependently) {
  Rng rng(19);
  auto a = random_amps(4, rng);
  auto b = a;
  kernels::apply_gate2(a, 4, 3, 0, gates::tensor(gates::H(), gates::T()));
  kernels::apply_gate1(b, 4, 3, gates::H());
  kernels::apply_gate1(b, 4, 0, gates::T());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_LT(std::abs(a[i] - b[i]), 1e-12);
  }
}

TEST(Gate4, HadamardSandwichTurnsCnotIntoCz) {
  // (I (x) H) CZ (I (x) H) = CNOT.
  Rng rng(23);
  auto a = random_amps(3, rng);
  auto b = a;
  kernels::apply_gate2(a, 3, 2, 1, gates::CNOT());
  kernels::apply_gate1(b, 3, 1, gates::H());
  kernels::apply_gate2(b, 3, 2, 1, gates::CZ());
  kernels::apply_gate1(b, 3, 1, gates::H());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_LT(std::abs(a[i] - b[i]), 1e-12);
  }
}

TEST(Gate4, PreservesNormOnRandomStates) {
  Rng rng(29);
  auto amps = random_amps(6, rng);
  kernels::apply_gate2(amps, 6, 5, 2, gates::ISWAP());
  kernels::apply_gate2(amps, 6, 0, 4, gates::CPhase(1.3));
  EXPECT_NEAR(kernels::norm_squared(amps), 1.0, 1e-12);
}

TEST(Gate4, ComposeAndAdjointRoundTrip) {
  const Gate4 g = gates::ISWAP().compose(gates::CPhase(0.4));
  EXPECT_LT(g.compose(g.adjoint()).distance(gates::II()), 1e-12);
}

TEST(Gate4, KernelValidatesArguments) {
  std::vector<Amplitude> amps(8);
  EXPECT_THROW(kernels::apply_gate2(amps, 3, 1, 1, gates::CZ()),
               CheckFailure);
  EXPECT_THROW(kernels::apply_gate2(amps, 3, 3, 0, gates::CZ()),
               CheckFailure);
  EXPECT_THROW(kernels::apply_gate2(amps, 2, 1, 0, gates::CZ()),
               CheckFailure);
}

}  // namespace
}  // namespace pqs::qsim

#include "common/cli.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace pqs {
namespace {

Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()), args.data());
}

TEST(Cli, ParsesSpaceSeparatedValue) {
  auto cli = make_cli({"--n", "16"});
  EXPECT_EQ(cli.get_int("n", 0, "qubits"), 16);
}

TEST(Cli, ParsesEqualsValue) {
  auto cli = make_cli({"--eps=0.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.0, "epsilon"), 0.25);
}

TEST(Cli, BareFlagIsTrue) {
  auto cli = make_cli({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false, "chatty"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  auto cli = make_cli({});
  EXPECT_EQ(cli.get_int("n", 12, "qubits"), 12);
  EXPECT_EQ(cli.get_string("mode", "auto", "mode"), "auto");
  EXPECT_FALSE(cli.get_bool("verbose", false, "chatty"));
}

TEST(Cli, BooleanSpellings) {
  EXPECT_TRUE(make_cli({"--x", "yes"}).get_bool("x", false, ""));
  EXPECT_FALSE(make_cli({"--x", "0"}).get_bool("x", true, ""));
  EXPECT_THROW(make_cli({"--x", "maybe"}).get_bool("x", false, ""),
               CheckFailure);
}

TEST(Cli, BadIntegerThrows) {
  auto cli = make_cli({"--n", "abc"});
  EXPECT_THROW(cli.get_int("n", 0, "qubits"), CheckFailure);
}

TEST(Cli, HelpRequested) {
  auto cli = make_cli({"--help"});
  EXPECT_TRUE(cli.help_requested());
  auto cli2 = make_cli({"-h"});
  EXPECT_TRUE(cli2.help_requested());
}

TEST(Cli, HelpListsDeclaredFlags) {
  auto cli = make_cli({});
  cli.get_int("qubits", 16, "number of address qubits");
  const std::string h = cli.help();
  EXPECT_NE(h.find("--qubits"), std::string::npos);
  EXPECT_NE(h.find("number of address qubits"), std::string::npos);
}

TEST(Cli, FinishRejectsUnknownFlags) {
  auto cli = make_cli({"--typo", "3"});
  cli.get_int("n", 0, "qubits");
  EXPECT_THROW(cli.finish(), CheckFailure);
}

TEST(Cli, UnknownFlagErrorNamesTheFlagAndSuggests) {
  auto cli = make_cli({"--shotz", "100"});
  cli.get_int("shots", 1, "measurement shots");
  cli.get_int("seed", 2005, "rng seed");
  try {
    cli.finish();
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("--shotz"), std::string::npos);
    EXPECT_NE(message.find("did you mean --shots?"), std::string::npos);
  }
}

TEST(Cli, FinishAcceptsDeclaredFlags) {
  auto cli = make_cli({"--n", "3"});
  cli.get_int("n", 0, "qubits");
  EXPECT_NO_THROW(cli.finish());
}

TEST(Cli, PositionalArgumentsRejected) {
  EXPECT_THROW(make_cli({"positional"}), CheckFailure);
}

TEST(Cli, NegativeNumberAsValue) {
  auto cli = make_cli({"--shift=-5"});
  EXPECT_EQ(cli.get_int("shift", 0, "shift"), -5);
}

}  // namespace
}  // namespace pqs

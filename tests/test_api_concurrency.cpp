// Concurrency tests for the facade: N threads firing the same SearchSpec
// at one shared Engine must (a) all observe the identical deterministic
// report — the whole point of deriving every run's randomness from
// spec.seed — and (b) leave the plan cache with ONE schedule for the key,
// served to every later request without re-optimization.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "api/api.h"

namespace pqs {
namespace {

TEST(PlannerConcurrencyTest, ConcurrentMissesAgreeOnOneSchedule) {
  Planner planner;
  constexpr int kThreads = 8;
  std::vector<Plan> plans(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&planner, &plans, t] {
        plans[t] = planner.schedule(1u << 16, 4, 0.98);
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(plans[t].schedule.l1, plans[0].schedule.l1);
    EXPECT_EQ(plans[t].schedule.l2, plans[0].schedule.l2);
    EXPECT_EQ(plans[t].schedule.queries, plans[0].schedule.queries);
  }
  EXPECT_EQ(planner.size(), 1u);
  EXPECT_EQ(planner.hits() + planner.misses(),
            static_cast<std::uint64_t>(kThreads));

  // A later lookup is a pure cache hit.
  const auto warm = planner.schedule(1u << 16, 4, 0.98);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.plan_ns, 0u);
  EXPECT_EQ(warm.schedule.queries, plans[0].schedule.queries);
}

TEST(EngineConcurrencyTest, SameSpecAcrossThreadsIsDeterministic) {
  const Engine engine;
  SearchSpec spec = SearchSpec::single_target(1u << 14, 4, 11213);
  spec.algorithm = "grk";
  spec.seed = 424242;

  constexpr int kThreads = 8;
  std::vector<SearchReport> reports(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&engine, &spec, &reports, t] { reports[t] = engine.run(spec); });
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(reports[t].measured, reports[0].measured);
    EXPECT_EQ(reports[t].correct, reports[0].correct);
    EXPECT_EQ(reports[t].queries, reports[0].queries);
    EXPECT_EQ(reports[t].l1, reports[0].l1);
    EXPECT_EQ(reports[t].l2, reports[0].l2);
    EXPECT_DOUBLE_EQ(reports[t].success_probability,
                     reports[0].success_probability);
  }
  EXPECT_EQ(engine.planner().size(), 1u);

  // The warm engine serves the same spec from the cache, same answer.
  const auto warm = engine.run(spec);
  EXPECT_TRUE(warm.plan_cache_hit);
  EXPECT_EQ(warm.plan_ns, 0u);
  EXPECT_EQ(warm.measured, reports[0].measured);
}

TEST(EngineConcurrencyTest, MixedSpecsShareTheEngineSafely) {
  const Engine engine;
  constexpr int kThreads = 6;
  std::vector<SearchReport> reports(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&engine, &reports, t] {
        SearchSpec spec = SearchSpec::single_target(
            1u << (10 + (t % 3)), 4, 17 + static_cast<qsim::Index>(t));
        spec.algorithm = (t % 2 == 0) ? "grk" : "certainty";
        spec.seed = 1000 + static_cast<std::uint64_t>(t);
        reports[t] = engine.run(spec);
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    if (t % 2 == 0) {
      // grk: success 1 - O(1/sqrt(N)); a single sample may still miss.
      EXPECT_GT(reports[t].success_probability, 0.8);
    } else {
      // certainty: probability-1 measurement, always correct.
      EXPECT_TRUE(reports[t].correct);
      EXPECT_NEAR(reports[t].success_probability, 1.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace pqs

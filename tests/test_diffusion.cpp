#include "qsim/diffusion.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/check.h"
#include "common/math.h"
#include "common/random.h"
#include "qsim/kernels.h"

namespace pqs::qsim {
namespace {

StateVector random_state(unsigned n_qubits, Rng& rng) {
  std::vector<Amplitude> amps(pow2(n_qubits));
  for (auto& a : amps) {
    a = Amplitude{rng.normal(), rng.normal()};
  }
  auto sv = StateVector::from_amplitudes(std::move(amps));
  sv.normalize();
  return sv;
}

class GlobalDiffusionEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(GlobalDiffusionEquivalence, GateLevelEqualsKernel) {
  const unsigned n = GetParam();
  Rng rng(1000 + n);
  auto kernel_state = random_state(n, rng);
  auto gate_state = kernel_state;

  kernel_state.reflect_about_uniform();
  apply_global_diffusion_gate_level(gate_state);
  EXPECT_LT(kernel_state.linf_distance(gate_state), 1e-12) << "n=" << n;
}

TEST_P(GlobalDiffusionEquivalence, DenseMatrixAgrees) {
  const unsigned n = GetParam();
  if (n > 10) {
    GTEST_SKIP() << "dense matrix too large";
  }
  Rng rng(2000 + n);
  auto kernel_state = random_state(n, rng);
  auto dense_state = kernel_state;

  kernel_state.reflect_about_uniform();
  apply_dense_matrix(dense_state, global_diffusion_matrix(n));
  EXPECT_LT(kernel_state.linf_distance(dense_state), 1e-11) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, GlobalDiffusionEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 8u, 10u,
                                           12u));

class BlockDiffusionEquivalence
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(BlockDiffusionEquivalence, GateLevelEqualsKernel) {
  const auto [n, k] = GetParam();
  Rng rng(3000 + 16 * n + k);
  auto kernel_state = random_state(n, rng);
  auto gate_state = kernel_state;

  kernel_state.reflect_blocks_about_uniform(k);
  apply_block_diffusion_gate_level(gate_state, k);
  EXPECT_LT(kernel_state.linf_distance(gate_state), 1e-12)
      << "n=" << n << " k=" << k;
}

TEST_P(BlockDiffusionEquivalence, DenseMatrixAgrees) {
  const auto [n, k] = GetParam();
  if (n > 10) {
    GTEST_SKIP() << "dense matrix too large";
  }
  Rng rng(4000 + 16 * n + k);
  auto kernel_state = random_state(n, rng);
  auto dense_state = kernel_state;

  kernel_state.reflect_blocks_about_uniform(k);
  apply_dense_matrix(dense_state, block_diffusion_matrix(n, k));
  EXPECT_LT(kernel_state.linf_distance(dense_state), 1e-11)
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BlockDiffusionEquivalence,
    ::testing::Values(std::tuple{2u, 1u}, std::tuple{3u, 1u},
                      std::tuple{3u, 2u}, std::tuple{4u, 1u},
                      std::tuple{4u, 2u}, std::tuple{4u, 3u},
                      std::tuple{6u, 2u}, std::tuple{8u, 3u},
                      std::tuple{10u, 5u}, std::tuple{12u, 4u}));

TEST(DiffusionMatrix, GlobalMatrixRowsSumCorrectly) {
  // Row sums of 2|psi0><psi0| - I are all 2 - 1 = ... each row sums to
  // 2/N * N - 1 = 1.
  const auto m = global_diffusion_matrix(3);
  for (std::size_t r = 0; r < 8; ++r) {
    Amplitude sum{0.0, 0.0};
    for (std::size_t c = 0; c < 8; ++c) {
      sum += m[r * 8 + c];
    }
    EXPECT_LT(std::abs(sum - Amplitude{1.0, 0.0}), 1e-12);
  }
}

TEST(DiffusionMatrix, BlockMatrixIsBlockDiagonal) {
  const auto m = block_diffusion_matrix(4, 2);  // 16x16, blocks of 4
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      if (r / 4 != c / 4) {
        EXPECT_LT(std::abs(m[r * 16 + c]), 1e-15);
      }
    }
  }
}

TEST(DiffusionMatrix, RejectsOversizedRequests) {
  EXPECT_THROW(global_diffusion_matrix(13), CheckFailure);
}

TEST(Diffusion, GateLevelBlockRejectsBadK) {
  auto sv = StateVector::uniform(4);
  EXPECT_THROW(apply_block_diffusion_gate_level(sv, 0), CheckFailure);
  EXPECT_THROW(apply_block_diffusion_gate_level(sv, 4), CheckFailure);
}

}  // namespace
}  // namespace pqs::qsim

#include "classical/adversary.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/check.h"

namespace pqs::classical {
namespace {

TEST(AdversaryOrderCost, BlockLastOrderMatchesClosedForm) {
  // Probing blocks 0..K-2 in address order, leaving block K-1 unprobed,
  // costs exactly the Appendix-A bound in expectation.
  const oracle::BlockLayout layout(8, 4);
  std::vector<oracle::Index> order(8);
  std::iota(order.begin(), order.end(), oracle::Index{0});
  EXPECT_NEAR(expected_probes_for_order(order, layout),
              appendix_a_bound(8, 4), 1e-12);
}

TEST(AdversaryOrderCost, InterleavedOrderIsWorse) {
  // An order that alternates blocks never gets an early elimination stop.
  const oracle::BlockLayout layout(8, 4);
  const std::vector<oracle::Index> interleaved{0, 2, 4, 6, 1, 3, 5, 7};
  EXPECT_GT(expected_probes_for_order(interleaved, layout),
            appendix_a_bound(8, 4));
}

TEST(AdversaryOrderCost, FullBlockSuffixStopsEarly) {
  // Suffix = one whole block: s = N - N/K, so the max cost is N - N/K.
  const oracle::BlockLayout layout(6, 3);
  const std::vector<oracle::Index> order{2, 3, 0, 1, 4, 5};  // block 2 last
  // Costs: positions 0..3 -> 1,2,3,4 (s = 4); targets 4,5 -> cost 4.
  EXPECT_NEAR(expected_probes_for_order(order, layout),
              (1.0 + 2.0 + 3.0 + 4.0 + 4.0 + 4.0) / 6.0, 1e-12);
}

TEST(AdversaryOrderCost, RejectsIncompleteOrders) {
  const oracle::BlockLayout layout(6, 3);
  EXPECT_THROW(
      expected_probes_for_order(std::vector<oracle::Index>{0, 1}, layout),
      CheckFailure);
}

class ExhaustiveBound
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(ExhaustiveBound, MinimumOverAllOrdersEqualsAppendixA) {
  const auto [n, k] = GetParam();
  const auto result = exhaustive_partial_search_bound(n, k);
  EXPECT_NEAR(result.min_expected, appendix_a_bound(n, k), 1e-9)
      << "N=" << n << " K=" << k;
  EXPECT_GT(result.max_expected, result.min_expected);
  // The optimal orders are exactly those ending with one full block:
  // K * (N/K)! * (N - N/K)!.
  double expected_count = static_cast<double>(k);
  for (std::uint64_t i = 2; i <= n / k; ++i) {
    expected_count *= static_cast<double>(i);
  }
  for (std::uint64_t i = 2; i <= n - n / k; ++i) {
    expected_count *= static_cast<double>(i);
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(result.optimal_orders),
                   expected_count)
      << "N=" << n << " K=" << k;
}

INSTANTIATE_TEST_SUITE_P(SmallInstances, ExhaustiveBound,
                         ::testing::Values(std::pair{4u, 2u},
                                           std::pair{6u, 2u},
                                           std::pair{6u, 3u},
                                           std::pair{8u, 2u},
                                           std::pair{8u, 4u},
                                           std::pair{9u, 3u}));

TEST(ExhaustiveBound, ChecksAllFactorialOrders) {
  const auto result = exhaustive_partial_search_bound(6, 3);
  EXPECT_EQ(result.orders_checked, 720u);
}

TEST(ExhaustiveBound, RejectsLargeN) {
  EXPECT_THROW(exhaustive_partial_search_bound(12, 3), CheckFailure);
}

}  // namespace
}  // namespace pqs::classical

// Facade tests: every registered algorithm run through pqs::Engine matches
// the direct module call at a fixed seed (the facade adds dispatch, not
// behavior), plus registry semantics, "auto" planning, and spec validation.
#include "api/api.h"

#include <gtest/gtest.h>

#include <cmath>

#include "api/algorithms/adapters.h"
#include "classical/search.h"
#include "common/math.h"
#include "grover/amplitude_amplification.h"
#include "grover/bbht.h"
#include "grover/exact.h"
#include "grover/grover.h"
#include "oracle/blocks.h"
#include "oracle/database.h"
#include "oracle/marked_set.h"
#include "partial/certainty.h"
#include "partial/grk.h"
#include "partial/interleave.h"
#include "partial/multi.h"
#include "partial/noisy.h"
#include "partial/optimizer.h"
#include "partial/twelve.h"
#include "reduction/reduction.h"
#include "zalka/zalka.h"

namespace pqs {
namespace {

constexpr std::uint64_t kSeed = 20050613;

const Engine& shared_engine() {
  static const Engine engine;
  return engine;
}

TEST(RegistryTest, AllTwelveIssueNamesResolve) {
  const auto& registry = shared_engine().registry();
  for (const char* name :
       {"grover", "bbht", "exact", "grk", "multi", "certainty", "interleave",
        "twelve", "noisy", "reduction", "zalka", "classical"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_EQ(registry.find(name).name(), name);
  }
  EXPECT_TRUE(registry.contains("ampamp"));  // bonus 13th entry
}

TEST(RegistryTest, UnknownNameThrowsListingKnownOnes) {
  EXPECT_THROW(shared_engine().registry().find("does-not-exist"),
               CheckFailure);
  SearchSpec spec = SearchSpec::single_target(64, 1, 3);
  spec.algorithm = "does-not-exist";
  EXPECT_THROW(shared_engine().run(spec), CheckFailure);
}

TEST(RegistryTest, DuplicateAndReservedNamesRejected) {
  Registry registry = Registry::with_builtin_algorithms();
  EXPECT_THROW(api::register_grover(registry), CheckFailure);  // duplicate
  EXPECT_THROW(
      registry.register_algorithm("auto", [] {
        return std::unique_ptr<Algorithm>();
      }),
      CheckFailure);
}

TEST(SearchSpecTest, ValidationRejectsMalformedRequests) {
  SearchSpec spec;  // no size, no marked set
  EXPECT_THROW(spec.validate(), CheckFailure);
  spec = SearchSpec::single_target(64, 1, 99);  // marked out of range
  EXPECT_THROW(spec.validate(), CheckFailure);
  spec = SearchSpec::single_target(64, 3, 3);  // K does not divide N
  EXPECT_THROW(spec.validate(), CheckFailure);
  spec = SearchSpec::single_target(64, 1, 3);
  spec.predicate = [](qsim::Index) { return true; };  // both sources set
  EXPECT_THROW(spec.validate(), CheckFailure);
  spec.predicate = nullptr;
  spec.marked = {3, 3};  // duplicates
  EXPECT_THROW(spec.validate(), CheckFailure);
  spec.marked = {3};
  EXPECT_NO_THROW(spec.validate());
}

TEST(SearchSpecTest, PredicateMaterializesTheMarkedSet) {
  SearchSpec spec;
  spec.n_items = 128;
  spec.predicate = [](qsim::Index x) { return x % 32 == 5; };
  EXPECT_EQ(spec.resolve_marked(),
            (std::vector<qsim::Index>{5, 37, 69, 101}));
}

// -- byte-for-byte equivalence against the direct module calls ------------

TEST(EngineEquivalenceTest, Grover) {
  SearchSpec spec = SearchSpec::single_target(256, 1, 77);
  spec.algorithm = "grover";
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  const oracle::Database db(256, 77);
  Rng rng(kSeed);
  const auto direct = grover::search(db, rng);
  EXPECT_EQ(report.measured, direct.measured);
  EXPECT_EQ(report.correct, direct.correct);
  EXPECT_EQ(report.queries, direct.queries);
  EXPECT_DOUBLE_EQ(report.success_probability, direct.success_probability);
  EXPECT_EQ(report.backend_used, direct.backend_used);
}

TEST(EngineEquivalenceTest, Exact) {
  SearchSpec spec = SearchSpec::single_target(512, 1, 100);
  spec.algorithm = "exact";
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  const oracle::Database db(512, 100);
  Rng rng(kSeed);
  const auto direct = grover::search_exact(db, rng);
  EXPECT_EQ(report.measured, direct.measured);
  EXPECT_EQ(report.queries, direct.queries);
  EXPECT_DOUBLE_EQ(report.success_probability, direct.success_probability);
  EXPECT_TRUE(report.correct);
}

TEST(EngineEquivalenceTest, Bbht) {
  SearchSpec spec;
  spec.algorithm = "bbht";
  spec.n_items = 1024;
  spec.marked = {3, 500, 900};
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  const oracle::MarkedDatabase db(1024, {3, 500, 900});
  Rng rng(kSeed);
  const auto direct = grover::search_unknown(db, rng);
  ASSERT_TRUE(direct.found.has_value());
  EXPECT_EQ(report.measured, *direct.found);
  EXPECT_EQ(report.queries, direct.queries);
  EXPECT_TRUE(report.correct);
}

TEST(EngineEquivalenceTest, Ampamp) {
  SearchSpec spec;
  spec.algorithm = "ampamp";
  spec.n_items = 256;
  spec.marked = {7, 71, 135, 199};
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  const oracle::MarkedDatabase db(256, {7, 71, 135, 199});
  const auto backend = grover::amplify_uniform_on_backend(
      db, grover_optimal_iterations(256, 4));
  Rng rng(kSeed);
  EXPECT_EQ(report.measured, backend->sample(rng));
  EXPECT_EQ(report.queries, db.queries());
  EXPECT_DOUBLE_EQ(report.success_probability,
                   backend->marked_probability());
  EXPECT_TRUE(report.correct);
}

TEST(EngineEquivalenceTest, Grk) {
  SearchSpec spec = SearchSpec::single_target(4096, 4, 2731);
  spec.algorithm = "grk";
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  const oracle::Database db(4096, 2731);
  Rng rng(kSeed);
  const auto direct = partial::run_partial_search(db, 2, rng);
  EXPECT_EQ(report.l1, direct.l1);
  EXPECT_EQ(report.l2, direct.l2);
  EXPECT_EQ(report.measured, direct.measured_block);
  EXPECT_EQ(report.correct, direct.correct);
  EXPECT_EQ(report.queries, direct.queries);
  EXPECT_DOUBLE_EQ(report.success_probability, direct.block_probability);
  EXPECT_TRUE(report.block_answer);
}

TEST(EngineEquivalenceTest, Multi) {
  SearchSpec spec;
  spec.algorithm = "multi";
  spec.n_items = 1024;
  spec.n_blocks = 4;
  spec.marked = {260, 270, 300};  // all in block 1
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  const oracle::MarkedDatabase db(1024, {260, 270, 300});
  Rng rng(kSeed);
  const auto direct = partial::run_partial_search_multi(db, 2, rng);
  EXPECT_EQ(report.l1, direct.l1);
  EXPECT_EQ(report.l2, direct.l2);
  EXPECT_EQ(report.measured, direct.measured_block);
  EXPECT_EQ(report.queries, direct.queries);
  EXPECT_DOUBLE_EQ(report.success_probability, direct.block_probability);
}

TEST(EngineEquivalenceTest, Certainty) {
  SearchSpec spec = SearchSpec::single_target(1024, 8, 700);
  spec.algorithm = "certainty";
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  const oracle::Database db(1024, 700);
  Rng rng(kSeed);
  const auto direct = partial::run_partial_search_certain(db, 3, rng);
  EXPECT_EQ(report.measured, direct.measured_block);
  EXPECT_EQ(report.queries, direct.schedule.queries);
  EXPECT_DOUBLE_EQ(report.success_probability, direct.block_probability);
  EXPECT_TRUE(report.correct);
}

TEST(EngineEquivalenceTest, Interleave) {
  SearchSpec spec = SearchSpec::single_target(1024, 4, 333);
  spec.algorithm = "interleave";
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  const auto opt = partial::optimize_interleaved(
      1024, 4, partial::default_min_success(1024), 3);
  EXPECT_EQ(report.queries, opt.queries);
  // Replicate the adapter's execution + sampling stream.
  auto backend = qsim::make_backend(
      qsim::BackendKind::kAuto,
      qsim::BackendSpec::single_target(1024, 4, 333));
  for (const auto& segment : opt.schedule.segments) {
    for (std::uint64_t i = 0; i < segment.count; ++i) {
      backend->apply_oracle();
      if (segment.global) {
        backend->apply_global_diffusion();
      } else {
        backend->apply_block_diffusion();
      }
    }
  }
  backend->apply_step3();
  Rng rng(kSeed);
  EXPECT_EQ(report.measured, backend->sample_block(rng));
  EXPECT_DOUBLE_EQ(report.success_probability,
                   backend->block_probability(backend->target_block()));
}

TEST(EngineEquivalenceTest, Twelve) {
  SearchSpec spec = SearchSpec::single_target(12, 3, 7);
  spec.algorithm = "twelve";
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  EXPECT_EQ(report.queries, 2u);
  EXPECT_NEAR(report.success_probability,
              partial::two_query_block_probability(12, 3, 7), 1e-12);
  const auto trace = partial::run_figure1(7);
  EXPECT_NEAR(report.success_probability, trace.block_probability, 1e-12);
  EXPECT_TRUE(report.correct);  // probability-1 block measurement
}

TEST(EngineEquivalenceTest, Noisy) {
  SearchSpec spec = SearchSpec::single_target(256, 4, 100);
  spec.algorithm = "noisy";
  spec.noise = {qsim::NoiseKind::kDepolarizing, 0.01};
  spec.shots = 40;
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  const oracle::Database db(256, 100);
  Rng rng(kSeed);
  const auto direct = partial::run_noisy_partial_search(
      db, 2, spec.noise, 40, rng);
  EXPECT_EQ(report.trials, direct.trials);
  EXPECT_EQ(report.queries_per_trial, direct.queries_per_trial);
  EXPECT_DOUBLE_EQ(report.success_probability, direct.success_rate);
  EXPECT_EQ(report.queries, direct.trials * direct.queries_per_trial);
}

TEST(EngineEquivalenceTest, Reduction) {
  SearchSpec spec = SearchSpec::single_target(4096, 4, 1365);
  spec.algorithm = "reduction";
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  const oracle::Database db(4096, 1365);
  Rng rng(kSeed);
  const auto direct = reduction::search_full_via_partial(db, 2, rng);
  EXPECT_EQ(report.measured, direct.found);
  EXPECT_EQ(report.queries, direct.total_queries);
  EXPECT_TRUE(report.correct);
}

TEST(EngineEquivalenceTest, Zalka) {
  SearchSpec spec = SearchSpec::single_target(64, 1, 3);
  spec.algorithm = "zalka";
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  zalka::ZalkaOptions options;
  options.lemma2_sample = 8;
  const auto direct =
      zalka::analyze_grover(6, grover_optimal_iterations(64), options);
  EXPECT_EQ(report.queries, direct.queries);
  EXPECT_DOUBLE_EQ(report.success_probability, direct.min_success);
  EXPECT_EQ(report.correct, direct.lemma2_holds);
}

TEST(EngineEquivalenceTest, Classical) {
  SearchSpec spec = SearchSpec::single_target(1024, 4, 600);
  spec.algorithm = "classical";
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);

  const oracle::Database db(1024, 600);
  Rng rng(kSeed);
  const auto direct = classical::partial_search_randomized(
      db, oracle::BlockLayout(1024, 4), rng);
  EXPECT_EQ(report.measured, direct.answer);
  EXPECT_EQ(report.queries, direct.probes);
  EXPECT_TRUE(report.correct);

  spec.n_blocks = 1;  // K = 1: the full-search baseline
  const auto full_report = shared_engine().run(spec);
  const oracle::Database db2(1024, 600);
  Rng rng2(kSeed);
  const auto full_direct = classical::full_search_randomized(db2, rng2);
  EXPECT_EQ(full_report.measured, full_direct.answer);
  EXPECT_EQ(full_report.queries, full_direct.probes);
}

// -- "auto" planning ------------------------------------------------------

TEST(EngineAutoTest, ResolvesPerTheCostModel) {
  const Engine& engine = shared_engine();
  SearchSpec spec = SearchSpec::single_target(4096, 1, 7);
  EXPECT_EQ(engine.resolve_algorithm(spec), "grover");
  spec.min_success = 1.0;
  EXPECT_EQ(engine.resolve_algorithm(spec), "exact");
  spec.min_success = 0.0;
  spec.n_blocks = 4;
  EXPECT_EQ(engine.resolve_algorithm(spec), "grk");
  spec.min_success = 1.0;
  EXPECT_EQ(engine.resolve_algorithm(spec), "certainty");
  spec.min_success = 0.0;
  spec.marked = {7, 17, 100};  // clustered in block 0
  EXPECT_EQ(engine.resolve_algorithm(spec), "multi");
  spec.n_blocks = 1;
  EXPECT_EQ(engine.resolve_algorithm(spec), "ampamp");
  spec.marked = {7};
  spec.n_blocks = 4;
  spec.noise = {qsim::NoiseKind::kDephasing, 0.01};
  EXPECT_EQ(engine.resolve_algorithm(spec), "noisy");

  // The Figure-1 shape routes to the two-query pattern.
  SearchSpec twelve = SearchSpec::single_target(12, 3, 7);
  EXPECT_EQ(engine.resolve_algorithm(twelve), "twelve");
  SearchSpec eight = SearchSpec::single_target(8, 4, 1);
  EXPECT_EQ(engine.resolve_algorithm(eight), "twelve");
}

TEST(EngineAutoTest, AutoRunsEndToEnd) {
  SearchSpec spec = SearchSpec::single_target(4096, 4, 2731);
  spec.seed = kSeed;  // algorithm stays "auto"
  const auto report = shared_engine().run(spec);
  EXPECT_EQ(report.algorithm, "grk");
  EXPECT_TRUE(report.correct);
}

TEST(EngineTest, NoisySpecRejectedOutsideTheNoisyAlgorithm) {
  SearchSpec spec = SearchSpec::single_target(256, 4, 3);
  spec.algorithm = "grk";
  spec.noise = {qsim::NoiseKind::kDepolarizing, 0.01};
  EXPECT_THROW(shared_engine().run(spec), CheckFailure);
}

TEST(EngineTest, ShotsFanOutAndReportTheMode) {
  SearchSpec spec = SearchSpec::single_target(4096, 4, 2731);
  spec.algorithm = "grk";
  spec.seed = kSeed;
  spec.shots = 200;
  const auto report = shared_engine().run(spec);
  EXPECT_EQ(report.trials, 200u);
  EXPECT_TRUE(report.correct);  // the mode is the target block at p ~ 0.94
  EXPECT_EQ(report.measured, 2731u >> 10);
}

TEST(EngineTest, SymmetryBackendMatchesDenseProbabilities) {
  SearchSpec spec = SearchSpec::single_target(1u << 14, 8, 9999);
  spec.algorithm = "grk";
  spec.seed = kSeed;
  const auto dense = shared_engine().run(spec);
  spec.backend = qsim::BackendKind::kSymmetry;
  const auto symmetry = shared_engine().run(spec);
  EXPECT_EQ(symmetry.backend_used, qsim::BackendKind::kSymmetry);
  EXPECT_NEAR(symmetry.success_probability, dense.success_probability,
              1e-10);
  EXPECT_EQ(symmetry.l1, dense.l1);
  EXPECT_EQ(symmetry.l2, dense.l2);
}

TEST(EngineTest, HugeSymmetryRunsPlanInstantly) {
  SearchSpec spec =
      SearchSpec::single_target(std::uint64_t{1} << 40, 8, 12345);
  spec.algorithm = "grk";
  spec.seed = kSeed;
  const auto report = shared_engine().run(spec);
  EXPECT_EQ(report.backend_used, qsim::BackendKind::kSymmetry);
  EXPECT_GT(report.success_probability, 0.99);
  EXPECT_TRUE(report.correct);
}

}  // namespace
}  // namespace pqs

// pqs::LogHistogram: bucket geometry (exact small values, <= 25% relative
// bucket width above), quantile estimates that never overshoot the data,
// shard merging, and the canonical JSON the `stats` op embeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/histogram.h"
#include "common/random.h"

namespace pqs {
namespace {

TEST(LogHistogramTest, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(LogHistogram::bucket_index(v), v);
    EXPECT_EQ(LogHistogram::bucket_lower(v), v);
  }
}

TEST(LogHistogramTest, BucketLowerIsTheFloorOfItsBucket) {
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform probe values so every octave gets exercised.
    const int shift = static_cast<int>(rng.uniform_below(64));
    const std::uint64_t value = rng.next() >> shift;
    const std::size_t index = LogHistogram::bucket_index(value);
    ASSERT_LT(index, LogHistogram::kBuckets);
    EXPECT_LE(LogHistogram::bucket_lower(index), value);
    if (index + 1 < LogHistogram::kBuckets) {
      EXPECT_GT(LogHistogram::bucket_lower(index + 1), value);
    }
  }
}

TEST(LogHistogramTest, RelativeBucketWidthIsAtMostAQuarter) {
  for (std::size_t i = 8; i + 1 < LogHistogram::kBuckets; ++i) {
    const std::uint64_t lo = LogHistogram::bucket_lower(i);
    const std::uint64_t hi = LogHistogram::bucket_lower(i + 1);
    // Every log-spaced bucket spans a quarter of its octave's base, which
    // is at most 25% of its own lower bound: a percentile read from a
    // bucket floor is never more than 25% below the true sample.
    EXPECT_GT(hi, lo) << "bucket " << i;
    EXPECT_LE((hi - lo) * 4, lo) << "bucket " << i;
  }
}

TEST(LogHistogramTest, ExtremesLand) {
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  EXPECT_LT(LogHistogram::bucket_index(top), LogHistogram::kBuckets);
  LogHistogram h;
  h.record(0);
  h.record(top);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), top);
  EXPECT_EQ(h.percentile(1.0), top);  // exact max, not a bucket floor
}

TEST(LogHistogramTest, PercentilesNeverOvershootAndNeverLagFar) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) {
    h.record(v * 1000);  // 1ms .. 10s in us-ish units
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto truth = static_cast<std::uint64_t>(q * 10000) * 1000;
    const std::uint64_t estimate = h.percentile(q);
    EXPECT_LE(estimate, truth) << "q=" << q;  // bucket floors err low...
    EXPECT_GE(estimate, truth - truth / 4) << "q=" << q;  // ...by <= 25%
  }
  EXPECT_LE(h.percentile(0.0), 1000u);  // min's bucket floor, erring low
  EXPECT_GE(h.percentile(0.0), 750u);
  EXPECT_EQ(h.percentile(1.0), 10000000u);  // exact max
}

TEST(LogHistogramTest, EmptyHistogramIsAllZero) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  const Json json = h.to_json();
  EXPECT_EQ(json.at("count").as_uint(), 0u);
  EXPECT_EQ(json.at("buckets").as_array().size(), 0u);
}

TEST(LogHistogramTest, MergeMatchesRecordingEverythingInOne) {
  LogHistogram a;
  LogHistogram b;
  LogHistogram all;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next() >> (i % 50);
    ((i % 2 == 0) ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.max(), all.max());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.percentile(q), all.percentile(q)) << "q=" << q;
  }
  EXPECT_EQ(a.to_json().dump(), all.to_json().dump());
}

TEST(LogHistogramTest, JsonShapeIsCanonical) {
  LogHistogram h;
  h.record(3);
  h.record(3);
  h.record(100);
  const Json json = h.to_json();
  EXPECT_EQ(json.at("count").as_uint(), 3u);
  EXPECT_EQ(json.at("max").as_uint(), 100u);
  EXPECT_EQ(json.at("p50").as_uint(), 3u);
  const auto& buckets = json.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 2u);  // only non-empty buckets serialize
  EXPECT_EQ(buckets[0].as_array()[0].as_uint(), 3u);
  EXPECT_EQ(buckets[0].as_array()[1].as_uint(), 2u);
  EXPECT_EQ(buckets[1].as_array()[0].as_uint(), 96u);  // floor(100)'s bucket
  EXPECT_EQ(buckets[1].as_array()[1].as_uint(), 1u);
}

TEST(LogHistogramTest, ClearResets) {
  LogHistogram h;
  h.record(42);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.to_json().at("buckets").as_array().size(), 0u);
}

}  // namespace
}  // namespace pqs

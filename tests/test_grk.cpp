#include "partial/grk.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/check.h"
#include "common/math.h"
#include "partial/optimizer.h"

namespace pqs::partial {
namespace {

class GrkShape : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {
};

TEST_P(GrkShape, SucceedsWithHighProbabilityAndCorrectMeter) {
  const auto [n, k] = GetParam();
  Rng rng(500 + 32 * n + k);
  const oracle::Database db =
      oracle::Database::with_qubits(n, pow2(n) / 3 + 1);
  const auto result = run_partial_search(db, k, rng, {});

  EXPECT_EQ(result.queries, result.l1 + result.l2 + 1);
  EXPECT_EQ(db.queries(), result.queries);
  EXPECT_GE(result.block_probability, default_min_success(db.size()));
  EXPECT_LT(result.queries, grover_optimal_iterations(db.size()));
}

TEST_P(GrkShape, StateVectorAgreesWithSubspaceModel) {
  const auto [n, k] = GetParam();
  const oracle::Database db = oracle::Database::with_qubits(n, 5);
  const std::uint64_t l1 = pow2(n / 2) / 2 + 1;
  const std::uint64_t l2 = pow2((n - k) / 2) / 2 + 1;

  const auto state = evolve_partial_search(db, k, l1, l2);
  const SubspaceModel model(pow2(n), pow2(k));
  const auto modeled = model.run_grk(l1, l2);

  const qsim::Index target_block = db.target() >> (n - k);
  EXPECT_NEAR(state.block_probability(k, target_block),
              modeled.target_block_probability(), 1e-10);
  EXPECT_NEAR(state.probability(db.target()),
              modeled.target_state_probability(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GrkShape,
                         ::testing::Values(std::tuple{6u, 1u},
                                           std::tuple{6u, 2u},
                                           std::tuple{8u, 1u},
                                           std::tuple{8u, 3u},
                                           std::tuple{10u, 2u},
                                           std::tuple{10u, 4u},
                                           std::tuple{12u, 1u},
                                           std::tuple{12u, 5u}));

TEST(Grk, ExplicitIterationCountsAreHonored) {
  Rng rng(1);
  const oracle::Database db = oracle::Database::with_qubits(8, 77);
  GrkOptions options;
  options.l1 = 5;
  options.l2 = 3;
  const auto result = run_partial_search(db, 2, rng, options);
  EXPECT_EQ(result.l1, 5u);
  EXPECT_EQ(result.l2, 3u);
  EXPECT_EQ(result.queries, 9u);
}

TEST(Grk, SnapshotsCaptureThreeStages) {
  Rng rng(2);
  const oracle::Database db = oracle::Database::with_qubits(8, 100);
  GrkOptions options;
  options.capture_snapshots = true;
  const auto result = run_partial_search(db, 2, rng, options);
  EXPECT_EQ(result.snapshots.after_step1.size(), 256u);
  EXPECT_EQ(result.snapshots.after_step2.size(), 256u);
  EXPECT_EQ(result.snapshots.after_step3.size(), 256u);
}

TEST(Grk, Step2LeavesNonTargetBlocksUntouched) {
  // Figure 5's defining feature: between Step 1 and Step 2, amplitudes in
  // the non-target blocks do not move.
  Rng rng(3);
  const oracle::Database db = oracle::Database::with_qubits(10, 7);  // block 0
  GrkOptions options;
  options.capture_snapshots = true;
  const auto result = run_partial_search(db, 2, rng, options);
  const auto& s1 = result.snapshots.after_step1;
  const auto& s2 = result.snapshots.after_step2;
  for (std::size_t x = 256; x < 1024; ++x) {  // blocks 1..3 (target is in 0)
    ASSERT_LT(std::abs(s1[x] - s2[x]), 1e-12) << "x=" << x;
  }
}

TEST(Grk, Step2MakesTargetBlockRestNegative) {
  // Figure 5, second histogram: the non-target states of the target block
  // acquire negative amplitudes.
  Rng rng(4);
  const oracle::Database db = oracle::Database::with_qubits(10, 7);
  GrkOptions options;
  options.capture_snapshots = true;
  const auto result = run_partial_search(db, 2, rng, options);
  const auto& s2 = result.snapshots.after_step2;
  for (std::size_t x = 0; x < 256; ++x) {
    if (x == 7) {
      continue;
    }
    ASSERT_LT(s2[x].real(), 0.0) << "x=" << x;
  }
  EXPECT_GT(s2[7].real(), 0.0);
}

TEST(Grk, HalfAverageConditionApproximatelyHolds) {
  // Step 2 stops when the mean amplitude of all non-target states is half
  // the per-state amplitude of the non-target blocks. Use the
  // leakage-minimizing l2 (the paper's exact stopping point) rather than
  // the cheapest-above-floor choice, which deliberately stops early.
  Rng rng(5);
  const oracle::Database db = oracle::Database::with_qubits(12, 9);
  const SubspaceModel model(1 << 12, 8);
  const auto opt =
      optimize_integer(1 << 12, 8, default_min_success(1 << 12));
  std::uint64_t best_l2 = 0;
  double best_leak = 1.0;
  for (std::uint64_t l2 = 0; l2 < 100; ++l2) {
    const double leak =
        1.0 - model.run_grk(opt.l1, l2).target_block_probability();
    if (leak < best_leak) {
      best_leak = leak;
      best_l2 = l2;
    }
  }

  GrkOptions options;
  options.capture_snapshots = true;
  options.l1 = opt.l1;
  options.l2 = best_l2;
  const auto result = run_partial_search(db, 3, rng, options);
  const auto& s2 = result.snapshots.after_step2;

  qsim::Amplitude sum{0.0, 0.0};
  for (std::size_t x = 0; x < s2.size(); ++x) {
    if (x != 9) {
      sum += s2[x];
    }
  }
  const double mean = (sum / static_cast<double>(s2.size() - 1)).real();
  const double non_target_amp = s2[4095].real();  // deep in the last block
  // Integer rounding of l2 leaves an O(1/sqrt(N/K)) relative residual.
  EXPECT_NEAR(mean, non_target_amp / 2.0,
              std::fabs(non_target_amp) * 0.15 + 1e-12);
}

TEST(Grk, Step3ZeroesNonTargetBlocks) {
  Rng rng(6);
  const oracle::Database db = oracle::Database::with_qubits(10, 7);
  GrkOptions options;
  options.capture_snapshots = true;
  const auto result = run_partial_search(db, 2, rng, options);
  const auto& s3 = result.snapshots.after_step3;
  // Residual leakage per state is tiny (the success floor bounds the total).
  double leaked = 0.0;
  for (std::size_t x = 256; x < 1024; ++x) {
    leaked += std::norm(s3[x]);
  }
  EXPECT_LT(leaked, 1.0 - default_min_success(1024) + 1e-9);
}

TEST(Grk, PerturbingL2WorsensLeakage) {
  // The optimizer's l2 choice is a genuine optimum: moving one local
  // iteration in either direction strictly increases the non-target leakage.
  const std::uint64_t n_items = 1 << 14;
  const std::uint64_t k_blocks = 4;
  const SubspaceModel model(n_items, k_blocks);
  const auto opt =
      optimize_integer(n_items, k_blocks, default_min_success(n_items));

  const auto leakage = [&model](std::uint64_t l1, std::uint64_t l2) {
    return 1.0 - model.run_grk(l1, l2).target_block_probability();
  };
  // Find the best l2 for this fixed l1 (the optimizer picks the earliest l2
  // meeting the floor, not necessarily the leakage minimum).
  std::uint64_t best_l2 = 0;
  double best = 1.0;
  for (std::uint64_t l2 = 0; l2 < 200; ++l2) {
    const double leak = leakage(opt.l1, l2);
    if (leak < best) {
      best = leak;
      best_l2 = l2;
    }
  }
  ASSERT_GT(best_l2, 0u);
  EXPECT_GT(leakage(opt.l1, best_l2 - 1), best);
  EXPECT_GT(leakage(opt.l1, best_l2 + 1), best);
}

TEST(Grk, MeasuredBlocksFollowBlockDistribution) {
  Rng rng(7);
  const oracle::Database db = oracle::Database::with_qubits(8, 200);
  int correct = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    db.reset_queries();
    const auto result = run_partial_search(db, 2, rng, {});
    correct += result.correct ? 1 : 0;
  }
  // Success floor at N=256 is 1 - 4/16 = 0.75; allow generous sampling slack.
  EXPECT_GE(correct, kTrials / 2);
}

TEST(Grk, RejectsBadShapes) {
  Rng rng(8);
  const oracle::Database db12(12, 3);
  EXPECT_THROW(run_partial_search(db12, 1, rng, {}), CheckFailure);
  const oracle::Database db = oracle::Database::with_qubits(6, 3);
  EXPECT_THROW(run_partial_search(db, 0, rng, {}), CheckFailure);
  EXPECT_THROW(run_partial_search(db, 6, rng, {}), CheckFailure);
}

}  // namespace
}  // namespace pqs::partial

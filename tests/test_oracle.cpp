#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "oracle/blocks.h"
#include "oracle/database.h"
#include "oracle/marked_set.h"
#include "oracle/merit_list.h"
#include "qsim/state_vector.h"

namespace pqs::oracle {
namespace {

TEST(Database, ProbeAnswersAndCounts) {
  const Database db(100, 42);
  EXPECT_FALSE(db.probe(0));
  EXPECT_TRUE(db.probe(42));
  EXPECT_EQ(db.queries(), 2u);
}

TEST(Database, PeekDoesNotCount) {
  const Database db(10, 3);
  EXPECT_TRUE(db.peek(3));
  EXPECT_FALSE(db.peek(4));
  EXPECT_EQ(db.queries(), 0u);
}

TEST(Database, ResetQueries) {
  const Database db(10, 3);
  db.probe(1);
  db.reset_queries();
  EXPECT_EQ(db.queries(), 0u);
}

TEST(Database, ConstructorValidates) {
  EXPECT_THROW(Database(0, 0), CheckFailure);
  EXPECT_THROW(Database(5, 5), CheckFailure);
}

TEST(Database, NonPowerOfTwoSizesAllowed) {
  const Database db(12, 7);  // the Figure-1 example size
  EXPECT_EQ(db.size(), 12u);
  EXPECT_TRUE(db.probe(7));
}

TEST(Database, PhaseOracleFlipsTargetOnly) {
  const Database db = Database::with_qubits(3, 5);
  auto sv = qsim::StateVector::uniform(3);
  const auto before = sv.amplitude(5);
  db.apply_phase_oracle(sv);
  EXPECT_LT(std::abs(sv.amplitude(5) + before), 1e-15);
  EXPECT_LT(std::abs(sv.amplitude(2) - sv.amplitude(3)), 1e-15);
  EXPECT_EQ(db.queries(), 1u);
}

TEST(Database, GeneralizedPhaseOracle) {
  const Database db = Database::with_qubits(2, 1);
  auto sv = qsim::StateVector::uniform(2);
  db.apply_phase_oracle(sv, kHalfPi);  // multiply target by i
  EXPECT_LT(std::abs(sv.amplitude(1) - qsim::Amplitude{0.0, 0.5}), 1e-15);
}

TEST(Database, BitOracleTogglesAncilla) {
  const Database db = Database::with_qubits(2, 3);
  // 3 qubits total: ancilla (qubit 2) + 2 address qubits.
  auto sv = qsim::StateVector::basis(3, 3);  // |0>|11>: address = target
  db.apply_bit_oracle(sv);
  EXPECT_NEAR(sv.probability(3 + 4), 1.0, 1e-15);  // ancilla set
  // Applying twice is the identity.
  db.apply_bit_oracle(sv);
  EXPECT_NEAR(sv.probability(3), 1.0, 1e-15);
}

TEST(Database, BitOracleLeavesNonTargetsAlone) {
  const Database db = Database::with_qubits(2, 3);
  auto sv = qsim::StateVector::basis(3, 1);  // address 1 != target
  db.apply_bit_oracle(sv);
  EXPECT_NEAR(sv.probability(1), 1.0, 1e-15);
}

TEST(Database, ViewExposesMarkedPredicate) {
  const Database db(16, 9);
  const auto view = db.view();
  EXPECT_TRUE(view.marked(9));
  EXPECT_FALSE(view.marked(8));
  EXPECT_EQ(view.target, 9u);
}

TEST(BlockLayout, AddressRoundTrip) {
  const BlockLayout layout(24, 4);
  EXPECT_EQ(layout.block_size(), 6u);
  for (Index x = 0; x < 24; ++x) {
    EXPECT_EQ(layout.address(layout.block_of(x), layout.offset_of(x)), x);
  }
}

TEST(BlockLayout, WithBitsMatchesPaperConvention) {
  // First k bits of the address = the block index.
  const auto layout = BlockLayout::with_bits(6, 2);
  EXPECT_EQ(layout.num_blocks(), 4u);
  EXPECT_EQ(layout.block_of(0b110101), 0b110101 >> 4);
}

TEST(BlockLayout, BlockBoundaries) {
  const BlockLayout layout(12, 3);
  EXPECT_EQ(layout.block_begin(0), 0u);
  EXPECT_EQ(layout.block_end(0), 4u);
  EXPECT_EQ(layout.block_begin(2), 8u);
  EXPECT_EQ(layout.block_end(2), 12u);
}

TEST(BlockLayout, RejectsUnevenPartition) {
  EXPECT_THROW(BlockLayout(10, 3), CheckFailure);
  EXPECT_THROW(BlockLayout(4, 8), CheckFailure);
}

TEST(MarkedDatabase, DeduplicatesAndSorts) {
  const MarkedDatabase db(16, {5, 3, 5, 9});
  EXPECT_EQ(db.num_marked(), 3u);
  EXPECT_TRUE(db.peek(3));
  EXPECT_TRUE(db.peek(5));
  EXPECT_TRUE(db.peek(9));
  EXPECT_FALSE(db.peek(4));
}

TEST(MarkedDatabase, EmptyMarkedSetAllowed) {
  const MarkedDatabase db(8, {});
  EXPECT_EQ(db.num_marked(), 0u);
  EXPECT_FALSE(db.probe(0));
}

TEST(MarkedDatabase, PhaseOracleFlipsAllMarked) {
  const MarkedDatabase db(8, {1, 6});
  auto sv = qsim::StateVector::uniform(3);
  db.apply_phase_oracle(sv);
  EXPECT_LT(sv.amplitude(1).real(), 0.0);
  EXPECT_LT(sv.amplitude(6).real(), 0.0);
  EXPECT_GT(sv.amplitude(0).real(), 0.0);
  EXPECT_EQ(db.queries(), 1u);  // one query flips the whole marked set
}

TEST(MeritList, DeterministicFromSeed) {
  const MeritList a(64, 7);
  const MeritList b(64, 7);
  for (std::uint64_t r = 0; r < 64; ++r) {
    EXPECT_EQ(a.name_at_rank(r), b.name_at_rank(r));
  }
}

TEST(MeritList, DatabaseTargetsTrueRank) {
  const MeritList list(32, 11);
  const std::string student = list.name_at_rank(17);
  const Database db = list.database_for(student);
  EXPECT_EQ(db.size(), 32u);
  EXPECT_EQ(db.target(), 17u);
  EXPECT_EQ(list.true_rank(student), 17u);
}

TEST(MeritList, UnknownStudentThrows) {
  const MeritList list(8, 1);
  EXPECT_THROW(list.database_for("nobody"), CheckFailure);
}

TEST(MeritList, FractionLabels) {
  EXPECT_EQ(MeritList::fraction_label(0, 4), "top 25%");
  EXPECT_EQ(MeritList::fraction_label(3, 4), "bottom 25%");
  EXPECT_EQ(MeritList::fraction_label(1, 4), "25%-50% band");
}

}  // namespace
}  // namespace pqs::oracle

// Compile-and-smoke test of the umbrella header: every public subsystem is
// reachable through a single include, and a miniature end-to-end run works.
#include "pqs/pqs.h"

#include <gtest/gtest.h>

namespace pqs {
namespace {

TEST(Umbrella, EndToEndMiniPipeline) {
  Rng rng(1);
  const oracle::Database db = oracle::Database::with_qubits(8, 129);

  // One symbol from each subsystem, exercised for real.
  EXPECT_TRUE(is_pow2(db.size()));                                 // common
  auto sv = qsim::StateVector::uniform(8);                         // qsim
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
  const auto grover_run = grover::search(db, rng);                 // grover
  EXPECT_GT(grover_run.success_probability, 0.9);
  db.reset_queries();
  const auto partial_run = partial::run_partial_search(db, 2, rng, {});
  EXPECT_LT(partial_run.queries, grover_run.queries);              // partial
  const auto classic = classical::full_search_deterministic(db);   // classical
  EXPECT_TRUE(classic.correct);
  EXPECT_GT(partial::lower_bound_coefficient(4), 0.0);             // bounds
  EXPECT_GT(zalka::theorem3_floor(256, 0.0), 0.0);                 // zalka
}

}  // namespace
}  // namespace pqs

#include "grover/amplitude_amplification.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.h"
#include "grover/grover.h"
#include "oracle/database.h"

namespace pqs::grover {
namespace {

TEST(AmplitudeAmplification, HadamardPreparationReducesToGrover) {
  // Q = -A S0 A^{-1} St with A = H^(x)n must equal the Grover iteration
  // I0 . It, state for state.
  const unsigned n = 6;
  const oracle::MarkedDatabase multi(pow2(n), {23});
  const oracle::Database single = oracle::Database::with_qubits(n, 23);

  const auto amplified = amplify(n, hadamard_preparation(), multi, 5);
  const auto grover_state = evolve(single, 5);
  EXPECT_LT(amplified.linf_distance(grover_state), 1e-12);
}

TEST(AmplitudeAmplification, ClosedFormMatchesSimulation) {
  const unsigned n = 8;
  const oracle::MarkedDatabase db(pow2(n), {1, 100, 200});
  const auto prep = hadamard_preparation();
  const double a = initial_success_probability(n, prep, db);
  EXPECT_NEAR(a, 3.0 / 256.0, 1e-12);

  for (std::uint64_t j = 0; j <= 8; ++j) {
    const auto state = amplify(n, prep, db, j);
    double p = 0.0;
    for (const auto m : db.marked()) {
      p += state.probability(m);
    }
    ASSERT_NEAR(p, amplified_success_probability(a, j), 1e-10) << "j=" << j;
  }
}

TEST(AmplitudeAmplification, WorksWithNonHadamardPreparation) {
  // A = layer of Ry rotations: a biased but valid preparation.
  const unsigned n = 5;
  const auto apply = [](qsim::StateVector& state) {
    for (unsigned q = 0; q < state.num_qubits(); ++q) {
      state.apply_gate1(q, qsim::gates::Ry(0.9));
    }
  };
  const auto unapply = [](qsim::StateVector& state) {
    for (unsigned q = 0; q < state.num_qubits(); ++q) {
      state.apply_gate1(q, qsim::gates::Ry(-0.9));
    }
  };
  const Preparation prep{apply, unapply};
  const oracle::MarkedDatabase db(pow2(n), {7});

  const double a = initial_success_probability(n, prep, db);
  ASSERT_GT(a, 0.0);
  for (std::uint64_t j = 1; j <= 4; ++j) {
    const auto state = amplify(n, prep, db, j);
    ASSERT_NEAR(state.probability(7), amplified_success_probability(a, j),
                1e-10)
        << "j=" << j;
  }
}

TEST(AmplitudeAmplification, StepPreservesNorm) {
  const unsigned n = 6;
  const oracle::MarkedDatabase db(pow2(n), {10, 20});
  auto state = qsim::StateVector::uniform(n);
  const auto prep = hadamard_preparation();
  for (int i = 0; i < 10; ++i) {
    amplification_step(state, prep, db);
  }
  EXPECT_NEAR(state.norm_squared(), 1.0, 1e-11);
}

TEST(AmplitudeAmplification, QueryMeterAdvancesOncePerStep) {
  const unsigned n = 4;
  const oracle::MarkedDatabase db(pow2(n), {3});
  amplify(n, hadamard_preparation(), db, 7);
  EXPECT_EQ(db.queries(), 7u);
}

TEST(AmplitudeAmplification, ClosedFormValidatesProbability) {
  EXPECT_THROW(amplified_success_probability(-0.1, 1), CheckFailure);
  EXPECT_THROW(amplified_success_probability(1.1, 1), CheckFailure);
  EXPECT_NEAR(amplified_success_probability(1.0, 0), 1.0, 1e-15);
}

}  // namespace
}  // namespace pqs::grover

#include "partial/interleave.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/math.h"
#include "partial/optimizer.h"

namespace pqs::partial {
namespace {

TEST(Schedule, CountsAndRendering) {
  Schedule s;
  s.segments = {{true, 12}, {false, 5}, {true, 3}};
  EXPECT_EQ(s.iteration_count(), 20u);
  EXPECT_EQ(s.query_count(), 21u);
  EXPECT_EQ(s.to_string(), "G^12 L^5 G^3");
}

TEST(Schedule, EmptyRendering) {
  Schedule s;
  EXPECT_EQ(s.to_string(), "(empty)");
  EXPECT_EQ(s.query_count(), 1u);  // step 3 only
}

TEST(RunSchedule, MatchesManualEvolution) {
  const SubspaceModel model(1 << 10, 4);
  Schedule s;
  s.segments = {{true, 7}, {false, 3}};
  const auto via_schedule = run_schedule(model, s);
  const auto direct = model.run_grk(7, 3);
  EXPECT_LT(std::abs(via_schedule.a_t - direct.a_t), 1e-13);
  EXPECT_LT(std::abs(via_schedule.a_b - direct.a_b), 1e-13);
  EXPECT_LT(std::abs(via_schedule.a_o - direct.a_o), 1e-13);
}

TEST(Interleave, TwoSegmentsReproducesIntegerOptimizer) {
  // With max_segments = 2 and schedules constrained to alternation, the
  // search space includes G^l1 L^l2 — the optimum must match
  // optimize_integer exactly (both exhaustive over the same family).
  const std::uint64_t n_items = 1 << 10;
  const std::uint64_t k_blocks = 4;
  const double floor_p = default_min_success(n_items);
  const auto two = optimize_interleaved(n_items, k_blocks, floor_p, 2);
  const auto plain = optimize_integer(n_items, k_blocks, floor_p);
  EXPECT_EQ(two.queries, plain.queries);
  EXPECT_GE(two.success, floor_p);
}

TEST(Interleave, MoreSegmentsNeverHurt) {
  const std::uint64_t n_items = 1 << 10;
  const double floor_p = default_min_success(n_items);
  for (const std::uint64_t k : {2u, 4u}) {
    const auto s1 = optimize_interleaved(n_items, k, floor_p, 1);
    const auto s2 = optimize_interleaved(n_items, k, floor_p, 2);
    const auto s3 = optimize_interleaved(n_items, k, floor_p, 3);
    EXPECT_GE(s1.queries, s2.queries) << "K=" << k;
    EXPECT_GE(s2.queries, s3.queries) << "K=" << k;
  }
}

TEST(Interleave, OptimumMeetsFloorAndAlternates) {
  const std::uint64_t n_items = 1 << 8;
  const auto opt =
      optimize_interleaved(n_items, 4, default_min_success(n_items), 3);
  EXPECT_GE(opt.success, default_min_success(n_items));
  EXPECT_EQ(opt.queries, opt.schedule.query_count());
  for (std::size_t i = 1; i < opt.schedule.segments.size(); ++i) {
    EXPECT_NE(opt.schedule.segments[i].global,
              opt.schedule.segments[i - 1].global)
        << "segments must alternate";
  }
}

TEST(Interleave, SingleSegmentIsGroverOrLocalOnly) {
  // max_segments = 1: either pure global amplification (close to full
  // search restricted to meeting the block floor) or pure local (only
  // useful for K = 2-ish geometries).
  const std::uint64_t n_items = 1 << 8;
  const auto opt =
      optimize_interleaved(n_items, 2, default_min_success(n_items), 1);
  EXPECT_LE(opt.schedule.segments.size(), 1u);
  EXPECT_GE(opt.success, default_min_success(n_items));
}

TEST(Interleave, RejectsAbsurdSegmentCounts) {
  EXPECT_THROW(optimize_interleaved(256, 4, 0.9, 0), CheckFailure);
  EXPECT_THROW(optimize_interleaved(256, 4, 0.9, 5), CheckFailure);
}

TEST(Interleave, ImpossibleFloorThrows) {
  EXPECT_THROW(optimize_interleaved(256, 4, 1.01, 2), CheckFailure);
}

}  // namespace
}  // namespace pqs::partial

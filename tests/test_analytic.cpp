#include "partial/analytic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/check.h"
#include "common/math.h"

namespace pqs::partial {
namespace {

TEST(SubspaceModel, StartStateIsNormalizedUniform) {
  const SubspaceModel model(1 << 12, 8);
  const auto s = model.uniform_start();
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-14);
  // Per-state amplitude must be 1/sqrt(N) in every class.
  const double expect = 1.0 / std::sqrt(4096.0);
  EXPECT_NEAR(s.a_t.real(), expect, 1e-15);
  EXPECT_NEAR(model.per_state_target_rest(s).real(), expect, 1e-14);
  EXPECT_NEAR(model.per_state_non_target(s).real(), expect, 1e-14);
}

class SubspaceUnitarity
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(SubspaceUnitarity, AllOperatorsPreserveNorm) {
  const auto [n_items, k_blocks] = GetParam();
  const SubspaceModel model(n_items, k_blocks);
  SubspaceState s = model.uniform_start();
  for (int i = 0; i < 50; ++i) {
    s = model.apply_global(s);
    ASSERT_NEAR(s.norm_squared(), 1.0, 1e-12);
  }
  for (int i = 0; i < 30; ++i) {
    s = model.apply_local(s);
    ASSERT_NEAR(s.norm_squared(), 1.0, 1e-12);
  }
  s = model.apply_local_generalized(s, 0.7, 1.9);
  ASSERT_NEAR(s.norm_squared(), 1.0, 1e-12);
  s = model.apply_step3(s);
  ASSERT_NEAR(s.norm_squared(), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SubspaceUnitarity,
    ::testing::Values(std::tuple{std::uint64_t{16}, std::uint64_t{2}},
                      std::tuple{std::uint64_t{64}, std::uint64_t{4}},
                      std::tuple{std::uint64_t{4096}, std::uint64_t{8}},
                      std::tuple{std::uint64_t{12}, std::uint64_t{3}},
                      std::tuple{std::uint64_t{1} << 30, std::uint64_t{32}},
                      std::tuple{std::uint64_t{1} << 50, std::uint64_t{16}}));

TEST(SubspaceModel, GlobalIterationMatchesGroverClosedForm) {
  // After l1 iterations, a_t = sin((2 l1 + 1) theta).
  const std::uint64_t n_items = 1 << 16;
  const SubspaceModel model(n_items, 4);
  const double theta = grover_angle(n_items);
  SubspaceState s = model.uniform_start();
  for (std::uint64_t l1 = 0; l1 <= 120; ++l1) {
    const double expected =
        std::sin((2.0 * static_cast<double>(l1) + 1.0) * theta);
    ASSERT_NEAR(s.a_t.real(), expected, 1e-10) << "l1=" << l1;
    s = model.apply_global(s);
  }
}

TEST(SubspaceModel, Step1AmplitudesMatchPaperEquations1And2) {
  // Paper eq. (1): alpha_y ~ sin(theta)/sqrt(K) for non-target blocks.
  // Paper eq. (2): alpha_yt ~ sqrt(1 - (K-1)/K sin^2(theta)).
  const std::uint64_t n_items = std::uint64_t{1} << 20;
  const std::uint64_t k_blocks = 16;
  const SubspaceModel model(n_items, k_blocks);
  const double eps = 0.35;
  const auto l1 = static_cast<std::uint64_t>(
      kQuarterPi * (1.0 - eps) * std::sqrt(static_cast<double>(n_items)));

  SubspaceState s = model.uniform_start();
  for (std::uint64_t i = 0; i < l1; ++i) {
    s = model.apply_global(s);
  }
  // Residual angle theta: cos(theta) = a_t.
  const double theta = clamped_acos(s.a_t.real());
  const auto kd = static_cast<double>(k_blocks);

  // Block mass of a non-target block: (N/K) * per_state^2 = sin^2/K.
  // The paper states eq. (1)/(2) with "~" (agreement up to O(1/sqrt(N))
  // terms); at N = 2^20 the exact model matches them to ~1e-6.
  const double per_state = model.per_state_non_target(s).real();
  const double block_mass =
      per_state * per_state * static_cast<double>(model.block_size());
  EXPECT_NEAR(block_mass, std::sin(theta) * std::sin(theta) / kd, 1e-5);

  // Target-block amplitude alpha_yt.
  const double alpha_yt = std::sqrt(s.target_block_probability());
  EXPECT_NEAR(alpha_yt,
              std::sqrt(1.0 - (kd - 1.0) / kd * std::sin(theta) *
                                  std::sin(theta)),
              1e-5);
}

TEST(SubspaceModel, LocalIterationFixesNonTargetBlocks) {
  const SubspaceModel model(1 << 14, 8);
  SubspaceState s = model.uniform_start();
  for (int i = 0; i < 37; ++i) {
    s = model.apply_global(s);
  }
  const auto a_o_before = s.a_o;
  for (int i = 0; i < 20; ++i) {
    s = model.apply_local(s);
    ASSERT_LT(std::abs(s.a_o - a_o_before), 1e-12) << "iteration " << i;
  }
}

TEST(SubspaceModel, LocalGeneralizedAtPiEqualsMinusLocal) {
  const SubspaceModel model(1024, 4);
  SubspaceState s = model.uniform_start();
  for (int i = 0; i < 10; ++i) {
    s = model.apply_global(s);
  }
  const auto plain = model.apply_local(s);
  const auto general = model.apply_local_generalized(s, kPi, kPi);
  EXPECT_LT(std::abs(general.a_t + plain.a_t), 1e-12);
  EXPECT_LT(std::abs(general.a_b + plain.a_b), 1e-12);
  EXPECT_LT(std::abs(general.a_o + plain.a_o), 1e-12);
}

TEST(SubspaceModel, LocalGeneralizedAtZeroIsOracleOnly) {
  const SubspaceModel model(256, 4);
  SubspaceState s = model.uniform_start();
  const auto out = model.apply_local_generalized(s, 0.4, 0.0);
  EXPECT_LT(std::abs(out.a_t - std::polar(1.0, 0.4) * s.a_t), 1e-14);
  EXPECT_LT(std::abs(out.a_b - s.a_b), 1e-14);
  EXPECT_LT(std::abs(out.a_o - s.a_o), 1e-14);
}

TEST(SubspaceModel, Step3LeavesTargetAlone) {
  const SubspaceModel model(1 << 10, 4);
  SubspaceState s = model.uniform_start();
  for (int i = 0; i < 20; ++i) {
    s = model.apply_global(s);
  }
  const auto before = s.a_t;
  s = model.apply_step3(s);
  EXPECT_LT(std::abs(s.a_t - before), 1e-14);
}

TEST(SubspaceModel, Step3ZeroCondition) {
  // If a_b = lambda a_o with lambda = (N-1-2 w_o^2)/(2 w_b w_o), Step 3 must
  // send a_o to exactly zero. Construct such a state by hand.
  const std::uint64_t n_items = 4096;
  const std::uint64_t k_blocks = 8;
  const SubspaceModel model(n_items, k_blocks);
  const double w_b = model.weight_target_rest();
  const double w_o = model.weight_non_target();
  const double lambda =
      (static_cast<double>(n_items) - 1.0 - 2.0 * w_o * w_o) /
      (2.0 * w_b * w_o);
  SubspaceState s;
  s.a_o = 0.3;
  s.a_b = lambda * 0.3;
  s.a_t = std::sqrt(1.0 - std::norm(s.a_b) - std::norm(s.a_o));
  const auto after = model.apply_step3(s);
  EXPECT_LT(std::abs(after.a_o), 1e-12);
  EXPECT_NEAR(after.target_block_probability(), 1.0, 1e-12);
}

TEST(SubspaceModel, Step3ResidualReportsLeakage) {
  const SubspaceModel model(1024, 4);
  SubspaceState s = model.uniform_start();
  EXPECT_GT(model.step3_residual(s), 0.0);
}

TEST(SubspaceModel, RunGrkMatchesManualSteps) {
  const SubspaceModel model(1 << 12, 4);
  const auto combined = model.run_grk(30, 12);
  SubspaceState s = model.uniform_start();
  for (int i = 0; i < 30; ++i) {
    s = model.apply_global(s);
  }
  for (int i = 0; i < 12; ++i) {
    s = model.apply_local(s);
  }
  s = model.apply_step3(s);
  EXPECT_LT(std::abs(combined.a_t - s.a_t), 1e-13);
  EXPECT_LT(std::abs(combined.a_b - s.a_b), 1e-13);
  EXPECT_LT(std::abs(combined.a_o - s.a_o), 1e-13);
}

TEST(SubspaceModel, TargetBlockAngleAdvancesDuringStep2) {
  // Figure 4: each local iteration advances the in-block angle by
  // 2 arcsin(1/sqrt(N/K)).
  const SubspaceModel model(1 << 16, 4);
  SubspaceState s = model.uniform_start();
  for (int i = 0; i < 150; ++i) {
    s = model.apply_global(s);
  }
  const double step =
      2.0 * std::asin(1.0 / std::sqrt(static_cast<double>(model.block_size())));
  double prev = model.target_block_angle(s);
  for (int i = 0; i < 5; ++i) {
    s = model.apply_local(s);
    const double cur = model.target_block_angle(s);
    ASSERT_NEAR(std::fabs(cur - prev), step, 1e-6);
    prev = cur;
  }
}

TEST(SubspaceModel, ConstructorValidatesShape) {
  EXPECT_THROW(SubspaceModel(16, 1), CheckFailure);   // one block
  EXPECT_THROW(SubspaceModel(15, 4), CheckFailure);   // uneven
  EXPECT_THROW(SubspaceModel(8, 8), CheckFailure);    // block size 1
}

TEST(SubspaceState, ToStringShowsAmplitudes) {
  SubspaceState s;
  s.a_t = 0.5;
  s.a_b = -0.25;
  s.a_o = 0.1;
  const auto str = s.to_string();
  EXPECT_NE(str.find("0.5"), std::string::npos);
  EXPECT_NE(str.find("-0.25"), std::string::npos);
}

}  // namespace
}  // namespace pqs::partial

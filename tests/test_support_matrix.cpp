// The backend support matrix: every public driver must either agree with
// the dense engine (to exact or statistical tolerance) under BOTH engines
// and batched execution, or reject the unsupported combination loudly —
// never fall back silently. This is the regression net for the "--backend
// silently ignored" class of bug: a driver that quietly ran dense would
// fail the symmetry-agreement rows here the moment its dynamics drifted,
// and the unsupported rows pin the loud CheckFailure contract.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "grover/amplitude_amplification.h"
#include "grover/bbht.h"
#include "grover/exact.h"
#include "grover/grover.h"
#include "oracle/database.h"
#include "oracle/marked_set.h"
#include "partial/certainty.h"
#include "partial/grk.h"
#include "partial/multi.h"
#include "partial/noisy.h"
#include "partial/optimizer.h"
#include "partial/twelve.h"
#include "reduction/reduction.h"
#include "zalka/zalka.h"

namespace pqs {
namespace {

using qsim::BackendKind;

class BackendMatrix : public ::testing::TestWithParam<BackendKind> {};

INSTANTIATE_TEST_SUITE_P(Engines, BackendMatrix,
                         ::testing::Values(BackendKind::kDense,
                                           BackendKind::kSymmetry),
                         [](const auto& info) {
                           return qsim::to_string(info.param);
                         });

TEST_P(BackendMatrix, GroverSearchAgreesWithClosedForm) {
  const oracle::Database db = oracle::Database::with_qubits(10, 700);
  Rng rng(1);
  const auto result =
      grover::search(db, rng, {.backend = GetParam()});
  EXPECT_EQ(result.backend_used, GetParam());
  const double theta = grover_angle(db.size());
  const double expected = std::pow(
      std::sin((2.0 * static_cast<double>(result.queries) + 1.0) * theta), 2);
  EXPECT_NEAR(result.success_probability, expected, 1e-10);
}

TEST_P(BackendMatrix, ExactSearchIsSureSuccess) {
  const oracle::Database db = oracle::Database::with_qubits(9, 17);
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const auto result = grover::search_exact(db, rng, {.backend = GetParam()});
    ASSERT_TRUE(result.correct);
    ASSERT_NEAR(result.success_probability, 1.0, 1e-9);
    EXPECT_EQ(result.backend_used, GetParam());
  }
}

TEST_P(BackendMatrix, BbhtFindsMarkedItems) {
  Rng rng(3);
  const oracle::MarkedDatabase db(1024, {3, 77, 500, 900});
  grover::BbhtOptions options;
  options.backend = GetParam();
  int found = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto result = grover::search_unknown(db, rng, options);
    if (result.found.has_value()) {
      ASSERT_TRUE(db.peek(*result.found));
      ++found;
    }
  }
  EXPECT_GE(found, 19);
}

TEST_P(BackendMatrix, BbhtBatchedMeanWithinTheoremBound) {
  const oracle::MarkedDatabase db(1024, {11, 222, 333});
  grover::BbhtOptions options;
  options.backend = GetParam();
  db.reset_queries();
  const auto report = grover::search_unknown_batch(db, 200, options,
                                                   {.threads = 0, .seed = 7});
  EXPECT_EQ(report.shots, 200u);
  EXPECT_GE(report.found, 198u);
  EXPECT_LT(report.mean_queries, grover::bbht_expected_queries_bound(1024, 3));
  // The database meter advanced by exactly the batch total.
  EXPECT_NEAR(static_cast<double>(db.queries()),
              report.mean_queries * 200.0, 0.5);
}

TEST_P(BackendMatrix, BbhtBatchedIsDeterministicAcrossThreadCounts) {
  const oracle::MarkedDatabase db(512, {99});
  grover::BbhtOptions options;
  options.backend = GetParam();
  const auto serial = grover::search_unknown_batch(db, 64, options,
                                                   {.threads = 1, .seed = 5});
  const auto fanned = grover::search_unknown_batch(db, 64, options,
                                                   {.threads = 0, .seed = 5});
  EXPECT_EQ(serial.found, fanned.found);
  EXPECT_DOUBLE_EQ(serial.mean_queries, fanned.mean_queries);
  EXPECT_DOUBLE_EQ(serial.mean_rounds, fanned.mean_rounds);
}

TEST_P(BackendMatrix, AmplifyUniformMatchesClosedForm) {
  const oracle::MarkedDatabase db(256, {1, 100, 200});
  const double a = 3.0 / 256.0;
  for (std::uint64_t j = 0; j <= 6; ++j) {
    db.reset_queries();
    const auto backend = grover::amplify_uniform_on_backend(db, j, GetParam());
    ASSERT_NEAR(backend->marked_probability(),
                grover::amplified_success_probability(a, j), 1e-10)
        << "j=" << j;
    EXPECT_EQ(db.queries(), j);
  }
}

TEST_P(BackendMatrix, AmplifyUniformMatchesGateLevelAmplify) {
  const unsigned n = 6;
  const oracle::MarkedDatabase db(pow2(n), {10, 20});
  const auto gate_level = grover::amplify(n, grover::hadamard_preparation(),
                                          db, 4);
  const auto backend = grover::amplify_uniform_on_backend(db, 4, GetParam());
  double p_gate = 0.0;
  for (const auto m : db.marked()) {
    p_gate += gate_level.probability(m);
  }
  EXPECT_NEAR(backend->marked_probability(), p_gate, 1e-10);
}

TEST_P(BackendMatrix, PartialSearchAgreesAcrossEngines) {
  const oracle::Database db = oracle::Database::with_qubits(12, 2731);
  Rng rng(4);
  partial::GrkOptions options;
  options.backend = GetParam();
  const auto run = partial::run_partial_search(db, 2, rng, options);
  partial::GrkOptions dense;
  dense.backend = BackendKind::kDense;
  const auto ref = partial::run_partial_search(db, 2, rng, dense);
  EXPECT_NEAR(run.block_probability, ref.block_probability, 1e-12);
  EXPECT_EQ(run.queries, ref.queries);
}

TEST_P(BackendMatrix, CertainPartialSearchIsCertain) {
  const oracle::Database db = oracle::Database::with_qubits(10, 3);
  Rng rng(5);
  const auto run = partial::run_partial_search_certain(db, 2, rng, GetParam());
  EXPECT_TRUE(run.correct);
  EXPECT_NEAR(run.block_probability, 1.0, 1e-9);
}

TEST_P(BackendMatrix, TwelveItemPatternIsExact) {
  for (qsim::Index t = 0; t < 12; ++t) {
    const auto trace = partial::run_figure1(t, GetParam());
    ASSERT_NEAR(trace.block_probability, 1.0, 1e-12) << "t=" << t;
    ASSERT_NEAR(trace.target_probability, 0.75, 1e-12) << "t=" << t;
  }
  EXPECT_NEAR(partial::two_query_block_probability(8, 4, 5, GetParam()), 1.0,
              1e-12);
}

TEST_P(BackendMatrix, ReductionRecoversFullAddress) {
  const oracle::Database db = oracle::Database::with_qubits(12, 1234);
  Rng rng(6);
  reduction::ReductionOptions options;
  options.backend = GetParam();
  const auto result = reduction::search_full_via_partial(db, 2, rng, options);
  EXPECT_TRUE(result.correct);
  EXPECT_EQ(result.found, 1234u);
}

TEST_P(BackendMatrix, NoisyPartialCleanRunMatchesGrk) {
  const oracle::Database db = oracle::Database::with_qubits(10, 700);
  Rng rng(7);
  partial::NoisyOptions options;
  options.backend = GetParam();
  const qsim::NoiseModel none;
  const auto run =
      partial::run_noisy_partial_search(db, 2, none, 400, rng, options);
  EXPECT_EQ(run.backend_used, GetParam());
  // Clean success at n=10 with the tight floor is >= 1 - 1/sqrt(N) ~ 0.97.
  EXPECT_GT(run.success_rate, 0.9);
  EXPECT_EQ(run.mean_injected, 0.0);
}

TEST_P(BackendMatrix, NoisyTrialsAreDeterministicAcrossThreadCounts) {
  const oracle::Database db = oracle::Database::with_qubits(8, 99);
  const qsim::NoiseModel model{qsim::NoiseKind::kDepolarizing, 0.02};
  partial::NoisyOptions serial;
  serial.backend = GetParam();
  serial.batch.threads = 1;
  partial::NoisyOptions fanned;
  fanned.backend = GetParam();
  fanned.batch.threads = 0;
  Rng rng_a(11), rng_b(11);
  const auto a = partial::run_noisy_partial_search(db, 2, model, 200, rng_a,
                                                   serial);
  const auto b = partial::run_noisy_partial_search(db, 2, model, 200, rng_b,
                                                   fanned);
  EXPECT_DOUBLE_EQ(a.success_rate, b.success_rate);
  EXPECT_DOUBLE_EQ(a.mean_injected, b.mean_injected);
}

// The headline scaling claim: the class-moment noise channel reproduces the
// dense trajectory success-rate curve to statistical tolerance — checked at
// n = 10 where both engines run — and then extends beyond the dense ceiling
// (n = 32) where only the symmetry engine can follow, still reproducing the
// clean baseline and the decohered 1/K floor that bracket the dense curves.
TEST(BackendMatrixNoise, SymmetryNoiseCurveMatchesDenseStatistically) {
  const oracle::Database db = oracle::Database::with_qubits(10, 700);
  const std::uint64_t trials = 1500;
  for (const auto kind :
       {qsim::NoiseKind::kDepolarizing, qsim::NoiseKind::kDephasing,
        qsim::NoiseKind::kBitFlip}) {
    for (const double p : {0.003, 0.01, 0.05}) {
      const qsim::NoiseModel model{kind, p};
      Rng rng_d(21), rng_s(21);
      partial::NoisyOptions dense;
      dense.backend = qsim::BackendKind::kDense;
      partial::NoisyOptions symm;
      symm.backend = qsim::BackendKind::kSymmetry;
      const auto d =
          partial::run_noisy_partial_search(db, 2, model, trials, rng_d, dense);
      const auto s =
          partial::run_noisy_partial_search(db, 2, model, trials, rng_s, symm);
      // ~3 combined sigmas at 1500 trials is ~0.04; allow model bias too.
      EXPECT_NEAR(d.success_rate, s.success_rate, 0.06)
          << qsim::noise_kind_name(kind) << " p=" << p;
      EXPECT_NEAR(d.mean_injected, s.mean_injected,
                  0.15 * (d.mean_injected + 1.0));
    }
  }
}

TEST(BackendMatrixNoise, SymmetryRunsNoisePastTheDenseCeiling) {
  // n = 32 > kMaxQubits: only the symmetry engine can run this at all; the
  // dense engine must refuse loudly rather than fall back.
  const std::uint64_t n_items = std::uint64_t{1} << 32;
  const oracle::Database db(n_items, 123456789);
  Rng rng(33);
  partial::NoisyOptions symm;
  symm.backend = qsim::BackendKind::kSymmetry;
  // No explicit schedule: the driver's default goes through
  // optimize_schedule, which must stay affordable at this size (the exact
  // integer scan would take ~20 s before any trial ran).
  const qsim::NoiseModel clean;
  const auto baseline =
      partial::run_noisy_partial_search(db, 2, clean, 60, rng, symm);
  EXPECT_GT(baseline.success_rate, 0.95);  // asymptotic schedule: ~1

  // At ~40k queries x 32 qubits, p = 0.01 fully decoheres the register:
  // the block answer must sit at the 1/K = 0.25 guess rate, exactly as the
  // dense curves at n = 20 end up once mean injected errors >> 1.
  const qsim::NoiseModel heavy{qsim::NoiseKind::kDepolarizing, 0.01};
  const auto decohered =
      partial::run_noisy_partial_search(db, 2, heavy, 400, rng, symm);
  EXPECT_NEAR(decohered.success_rate, 0.25, 0.08);

  partial::NoisyOptions dense;
  dense.backend = qsim::BackendKind::kDense;
  EXPECT_THROW(partial::run_noisy_partial_search(db, 2, heavy, 10, rng, dense),
               CheckFailure);
}

// Unsupported (module, backend) pairs fail loudly — never silently dense.
TEST(BackendMatrixUnsupported, LoudErrorsNotSilentFallbacks) {
  Rng rng(8);

  // Zalka's hybrid argument needs full amplitude vectors.
  zalka::ZalkaOptions zopts;
  zopts.backend = qsim::BackendKind::kSymmetry;
  EXPECT_THROW(zalka::analyze_grover(4, 3, zopts), CheckFailure);

  // Snapshot capture needs the dense engine.
  const oracle::Database db = oracle::Database::with_qubits(8, 1);
  partial::GrkOptions snapshots;
  snapshots.backend = qsim::BackendKind::kSymmetry;
  snapshots.capture_snapshots = true;
  EXPECT_THROW(partial::run_partial_search(db, 2, rng, snapshots),
               CheckFailure);

  // Multi-marked noise has no class-moment derivation: loud, not wrong.
  const oracle::MarkedDatabase multi(256, {7, 9});
  auto backend = qsim::make_backend(qsim::BackendKind::kSymmetry,
                                    qsim::BackendSpec{256, 1, {7, 9}});
  const qsim::NoiseModel model{qsim::NoiseKind::kDephasing, 0.1};
  Rng noise_rng(9);
  EXPECT_THROW(backend->apply_noise(model, noise_rng), CheckFailure);

  // Noise on a non-power-of-two database has no qubit structure.
  auto twelve = qsim::make_backend(qsim::BackendKind::kSymmetry,
                                   qsim::BackendSpec{12, 3, {7}});
  EXPECT_THROW(twelve->apply_noise(model, noise_rng), CheckFailure);

  // A noisy symmetry state cannot be materialized as amplitudes.
  auto sym = qsim::make_backend(qsim::BackendKind::kSymmetry,
                                qsim::BackendSpec{256, 4, {7}});
  sym->apply_noise(qsim::NoiseModel{qsim::NoiseKind::kDephasing, 1.0},
                   noise_rng);
  EXPECT_THROW(sym->amplitudes_copy(), CheckFailure);
}

}  // namespace
}  // namespace pqs

// LruMap and the bounded plan cache: capacity is enforced, recency rules
// eviction, and the counters a deployment watches stay truthful.
#include <gtest/gtest.h>

#include <string>

#include "api/planner.h"
#include "common/check.h"
#include "common/lru.h"

namespace pqs {
namespace {

TEST(LruMapTest, EvictsLeastRecentlyUsed) {
  LruMap<int, std::string> map(2);
  map.put(1, "one");
  map.put(2, "two");
  ASSERT_NE(map.find(1), nullptr);  // touch 1: now 2 is the coldest
  map.put(3, "three");
  EXPECT_EQ(map.find(2), nullptr);
  EXPECT_NE(map.find(1), nullptr);
  EXPECT_NE(map.find(3), nullptr);
  EXPECT_EQ(map.evictions(), 1u);
  EXPECT_EQ(map.size(), 2u);
}

TEST(LruMapTest, PutOverwritesAndRefreshes) {
  LruMap<int, int> map(2);
  map.put(1, 10);
  map.put(2, 20);
  map.put(1, 11);  // overwrite refreshes recency: 2 becomes the coldest
  map.put(3, 30);
  EXPECT_EQ(map.find(2), nullptr);
  ASSERT_NE(map.find(1), nullptr);
  EXPECT_EQ(*map.find(1), 11);
}

TEST(LruMapTest, ShrinkingCapacityEvictsNow) {
  LruMap<int, int> map(4);
  for (int i = 0; i < 4; ++i) {
    map.put(i, i);
  }
  map.set_capacity(2);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.evictions(), 2u);
  EXPECT_NE(map.find(3), nullptr);  // the two most recent survive
  EXPECT_NE(map.find(2), nullptr);
  EXPECT_THROW(map.set_capacity(0), CheckFailure);
}

TEST(PlannerLruTest, PlanCacheIsBoundedWithCounters) {
  Planner planner(/*capacity=*/2);
  EXPECT_EQ(planner.capacity(), 2u);
  // Three distinct keys through a 2-plan cache: the first gets evicted.
  (void)planner.schedule(1u << 10, 4, 0.9);
  (void)planner.schedule(1u << 11, 4, 0.9);
  (void)planner.schedule(1u << 12, 4, 0.9);
  EXPECT_EQ(planner.size(), 2u);
  EXPECT_EQ(planner.misses(), 3u);
  EXPECT_EQ(planner.evictions(), 1u);

  // The evicted key replans (miss); the resident keys hit.
  EXPECT_TRUE(planner.schedule(1u << 12, 4, 0.9).cache_hit);
  EXPECT_FALSE(planner.schedule(1u << 10, 4, 0.9).cache_hit);
  EXPECT_EQ(planner.hits(), 1u);
  EXPECT_EQ(planner.misses(), 4u);

  planner.clear();
  EXPECT_EQ(planner.size(), 0u);
  EXPECT_EQ(planner.hits(), 0u);
}

TEST(PlannerLruTest, DefaultCapacityIsDocumented) {
  Planner planner;
  EXPECT_EQ(planner.capacity(), Planner::kDefaultCapacity);
  EXPECT_EQ(planner.capacity(), 1024u);
}

}  // namespace
}  // namespace pqs

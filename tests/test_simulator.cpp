#include "qsim/simulator.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/math.h"
#include "grover/grover.h"
#include "oracle/database.h"

namespace pqs::qsim {
namespace {

TEST(Simulator, RunStateMatchesDirectCircuitApplication) {
  const oracle::Database db = oracle::Database::with_qubits(6, 40);
  const auto circuit = make_grover_circuit(6, 4);
  Simulator sim(1);
  const auto via_sim = sim.run_state(circuit, db.view());
  auto direct = StateVector::uniform(6);
  circuit.apply(direct, db.view());
  EXPECT_LT(via_sim.linf_distance(direct), 1e-12);
}

TEST(Simulator, ShotsAreReproducibleFromSeed) {
  const oracle::Database db = oracle::Database::with_qubits(5, 11);
  const auto circuit = make_grover_circuit(5, 3);
  Simulator a(77), b(77);
  const auto ra = a.run_shots(circuit, db.view(), 500);
  const auto rb = b.run_shots(circuit, db.view(), 500);
  EXPECT_EQ(ra.counts, rb.counts);
}

TEST(Simulator, ReseedResetsTheStream) {
  const oracle::Database db = oracle::Database::with_qubits(5, 11);
  const auto circuit = make_grover_circuit(5, 3);
  Simulator sim(123);
  const auto first = sim.run_shots(circuit, db.view(), 300);
  sim.reseed(123);
  const auto second = sim.run_shots(circuit, db.view(), 300);
  EXPECT_EQ(first.counts, second.counts);
}

TEST(Simulator, GroverShotsConcentrateOnTarget) {
  const unsigned n = 8;
  const oracle::Database db = oracle::Database::with_qubits(n, 200);
  const auto circuit =
      make_grover_circuit(n, grover::optimal_iterations(pow2(n)));
  Simulator sim(5);
  const auto report = sim.run_shots(circuit, db.view(), 400);
  EXPECT_EQ(report.mode, 200u);
  EXPECT_GT(report.mode_frequency, 0.95);
  EXPECT_EQ(report.queries_per_shot, grover::optimal_iterations(256));
}

TEST(Simulator, BlockShotsAnswerThePartialQuestion) {
  const unsigned n = 8, k = 2;
  const oracle::Database db = oracle::Database::with_qubits(n, 200);
  Circuit circuit(n);
  for (int i = 0; i < 8; ++i) {
    circuit.grover_iteration();
  }
  Simulator sim(6);
  const auto report = sim.run_block_shots(circuit, db.view(), k, 400);
  EXPECT_EQ(report.mode, 200u >> (n - k));
  std::uint64_t total = 0;
  for (const auto& [outcome, count] : report.counts) {
    EXPECT_LT(outcome, 4u);
    total += count;
  }
  EXPECT_EQ(total, 400u);
}

TEST(Simulator, NoisyShotsDegradeTheMode) {
  const unsigned n = 7;
  const oracle::Database db = oracle::Database::with_qubits(n, 100);
  const auto circuit =
      make_grover_circuit(n, grover::optimal_iterations(pow2(n)));
  Simulator clean(9), noisy(9);
  noisy.set_noise({NoiseKind::kDepolarizing, 0.05});
  const auto clean_report = clean.run_shots(circuit, db.view(), 150);
  const auto noisy_report = noisy.run_shots(circuit, db.view(), 150);
  EXPECT_GT(clean_report.mode_frequency, noisy_report.mode_frequency);
}

TEST(Simulator, ReportRenderingListsTopOutcomes) {
  const oracle::Database db = oracle::Database::with_qubits(4, 9);
  const auto circuit = make_grover_circuit(4, 2);
  Simulator sim(10);
  const auto report = sim.run_shots(circuit, db.view(), 200);
  const std::string text = report.to_string(3);
  EXPECT_NE(text.find("shots=200"), std::string::npos);
  EXPECT_NE(text.find("9:"), std::string::npos);  // the target outcome
}

TEST(Simulator, RejectsZeroShots) {
  const oracle::Database db = oracle::Database::with_qubits(3, 1);
  const auto circuit = make_grover_circuit(3, 1);
  Simulator sim(11);
  EXPECT_THROW(sim.run_shots(circuit, db.view(), 0), CheckFailure);
}

}  // namespace
}  // namespace pqs::qsim

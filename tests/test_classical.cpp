#include "classical/search.h"

#include <gtest/gtest.h>

#include "classical/montecarlo.h"
#include "common/check.h"
#include "partial/bounds.h"

namespace pqs::classical {
namespace {

TEST(ClassicalFull, DeterministicFindsEveryTarget) {
  for (std::uint64_t t = 0; t < 20; ++t) {
    const oracle::Database db(20, t);
    const auto result = full_search_deterministic(db);
    ASSERT_TRUE(result.correct);
    ASSERT_EQ(result.answer, t);
    // Probes: t+1 except the last cell, which is inferred for free.
    ASSERT_EQ(result.probes, t == 19 ? 19u : t + 1);
  }
}

TEST(ClassicalFull, RandomizedIsZeroError) {
  Rng rng(1);
  const auto stats = measure_full_randomized(128, 500, rng);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(ClassicalFull, RandomizedExpectationMatchesClosedForm) {
  Rng rng(2);
  const std::uint64_t n = 256;
  const auto stats = measure_full_randomized(n, 4000, rng);
  const double expected = partial::classical_full_expected(n);
  EXPECT_NEAR(stats.probes.mean(), expected,
              3.0 * stats.probes.ci95_halfwidth() + 1.0);
}

TEST(ClassicalPartial, DeterministicWorstCaseIsNMinusBlock) {
  // Target in the last (unprobed) block: exactly N(1 - 1/K) probes.
  const oracle::Database db(24, 23);
  const oracle::BlockLayout layout(24, 4);
  const auto result = partial_search_deterministic(db, layout);
  EXPECT_TRUE(result.correct);
  EXPECT_EQ(result.answer, 3u);
  EXPECT_EQ(result.probes,
            partial::classical_partial_deterministic(24, 4));
}

TEST(ClassicalPartial, DeterministicEarlyHitStopsProbing) {
  const oracle::Database db(24, 2);
  const oracle::BlockLayout layout(24, 4);
  const auto result = partial_search_deterministic(db, layout);
  EXPECT_TRUE(result.correct);
  EXPECT_EQ(result.probes, 3u);
}

TEST(ClassicalPartial, DeterministicIsZeroError) {
  Rng rng(3);
  const auto stats = measure_partial_deterministic(64, 4, 1000, rng);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(ClassicalPartial, RandomizedIsZeroError) {
  Rng rng(4);
  const auto stats = measure_partial_randomized(64, 4, 2000, rng);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(ClassicalPartial, RandomizedExpectationMatchesAppendixA) {
  // The centerpiece of Appendix A: E[probes] = N/2 (1 - 1/K^2) + O(1).
  Rng rng(5);
  for (const std::uint64_t k : {2u, 3u, 4u, 8u}) {
    const std::uint64_t n = 240;  // divisible by 2, 3, 4, 8
    const auto stats = measure_partial_randomized(n, k, 6000, rng);
    const double expected = partial::classical_partial_randomized_exact(n, k);
    EXPECT_NEAR(stats.probes.mean(), expected,
                3.0 * stats.probes.ci95_halfwidth() + 1.0)
        << "K=" << k;
  }
}

TEST(ClassicalPartial, RandomizedBeatsFullSearch) {
  Rng rng(6);
  const std::uint64_t n = 240;
  const auto partial_stats = measure_partial_randomized(n, 4, 4000, rng);
  const auto full_stats = measure_full_randomized(n, 4000, rng);
  EXPECT_LT(partial_stats.probes.mean(), full_stats.probes.mean());
}

TEST(ClassicalPartial, SavingsShrinkWithK) {
  // Appendix A: the advantage over N/2 decays like 1/K^2.
  Rng rng(7);
  const std::uint64_t n = 240;
  const auto k2 = measure_partial_randomized(n, 2, 6000, rng);
  const auto k8 = measure_partial_randomized(n, 8, 6000, rng);
  const double full = static_cast<double>(n) / 2.0;
  EXPECT_GT(full - k2.probes.mean(), 4.0 * (full - k8.probes.mean()) * 0.8);
}

TEST(ClassicalPartial, WorstCaseNeverExceedsDeterministicBound) {
  Rng rng(8);
  const oracle::BlockLayout layout(60, 3);
  for (int trial = 0; trial < 300; ++trial) {
    const oracle::Database db(60, rng.uniform_below(60));
    const auto result = partial_search_randomized(db, layout, rng);
    ASSERT_LE(result.probes,
              partial::classical_partial_deterministic(60, 3));
    ASSERT_TRUE(result.correct);
  }
}

TEST(ClassicalPartial, FixedOrderExpectationFormula) {
  // The closed form behind the Appendix-A lower-bound demonstration equals
  // the exact randomized expectation.
  for (const std::uint64_t k : {2u, 4u, 6u}) {
    EXPECT_NEAR(expected_probes_fixed_order(120, k),
                partial::classical_partial_randomized_exact(120, k), 1e-9)
        << "K=" << k;
  }
}

TEST(ClassicalPartial, LayoutMismatchRejected) {
  Rng rng(9);
  const oracle::Database db(24, 0);
  const oracle::BlockLayout wrong(12, 3);
  EXPECT_THROW(partial_search_deterministic(db, wrong), CheckFailure);
  EXPECT_THROW(partial_search_randomized(db, wrong, rng), CheckFailure);
}

}  // namespace
}  // namespace pqs::classical

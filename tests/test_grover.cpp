#include "grover/grover.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.h"

namespace pqs::grover {
namespace {

class GroverClosedForm : public ::testing::TestWithParam<unsigned> {};

TEST_P(GroverClosedForm, SimulationMatchesSinSquaredFormula) {
  const unsigned n = GetParam();
  const oracle::Database db = oracle::Database::with_qubits(n, pow2(n) / 3);
  const auto m_star = optimal_iterations(db.size());
  for (std::uint64_t m = 0; m <= m_star + 2; ++m) {
    db.reset_queries();
    const double simulated = success_probability_after(db, m);
    const double closed = grover_success_probability(db.size(), m);
    ASSERT_NEAR(simulated, closed, 1e-10) << "n=" << n << " m=" << m;
    ASSERT_EQ(db.queries(), m);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroverClosedForm,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 10u,
                                           12u));

TEST(Grover, OptimalIterationsNearQuarterPiSqrtN) {
  const auto m = optimal_iterations(1u << 16);
  EXPECT_NEAR(static_cast<double>(m), kQuarterPi * 256.0, 1.0);
}

TEST(Grover, HighSuccessAtOptimum) {
  for (unsigned n : {6u, 8u, 10u, 12u}) {
    const oracle::Database db = oracle::Database::with_qubits(n, 1);
    const double p =
        success_probability_after(db, optimal_iterations(db.size()));
    // Error is O(1/N) at the optimal count.
    EXPECT_GT(p, 1.0 - 4.0 / static_cast<double>(db.size())) << "n=" << n;
  }
}

TEST(Grover, SearchReturnsTargetWithHighProbability) {
  Rng rng(123);
  const oracle::Database db = oracle::Database::with_qubits(10, 777);
  int correct = 0;
  for (int trial = 0; trial < 50; ++trial) {
    db.reset_queries();
    const auto result = search(db, rng);
    EXPECT_EQ(result.queries, optimal_iterations(1024));
    correct += result.correct ? 1 : 0;
  }
  EXPECT_GE(correct, 48);  // p_fail ~ 1/N per trial
}

TEST(Grover, SearchWithZeroIterationsIsUniformGuess) {
  Rng rng(5);
  const oracle::Database db = oracle::Database::with_qubits(8, 0);
  const auto result = search_with_iterations(db, 0, rng);
  EXPECT_EQ(result.queries, 0u);
  EXPECT_NEAR(result.success_probability, 1.0 / 256.0, 1e-12);
}

TEST(Grover, AngleAfterAdvancesLinearly) {
  const std::uint64_t n_items = 1 << 12;
  const double theta = grover_angle(n_items);
  EXPECT_NEAR(angle_after(n_items, 0), theta, 1e-15);
  EXPECT_NEAR(angle_after(n_items, 10), 21.0 * theta, 1e-12);
}

TEST(Grover, DriftPastTargetObservedInSimulation) {
  // The paper's "curious feature" on the actual state vector: overshooting
  // reduces the target amplitude.
  const oracle::Database db = oracle::Database::with_qubits(10, 99);
  const auto m_star = optimal_iterations(db.size());
  const double at_opt = success_probability_after(db, m_star);
  db.reset_queries();
  const double past = success_probability_after(db, m_star + 6);
  EXPECT_LT(past, at_opt);
}

TEST(Grover, EvolveRejectsNonPowerOfTwo) {
  const oracle::Database db(12, 3);
  EXPECT_THROW(evolve(db, 1), CheckFailure);
}

TEST(Grover, StatePopulatesOnlyTwoLevelsOfAmplitude) {
  // The state stays in span{|t>, uniform-over-rest}: all non-target
  // amplitudes remain equal throughout.
  const oracle::Database db = oracle::Database::with_qubits(8, 100);
  const auto state = evolve(db, 7);
  const auto ref = state.amplitude(0);
  for (qsim::Index x = 0; x < 256; ++x) {
    if (x == 100) {
      continue;
    }
    EXPECT_LT(std::abs(state.amplitude(x) - ref), 1e-12);
  }
}

}  // namespace
}  // namespace pqs::grover

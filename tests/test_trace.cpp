// pqs::obs tracing: span timelines end to end through the Service (submit
// -> queue -> engine -> plan -> shots -> finish), the TraceStore ring and
// its eviction, the fake-clock-driven slow-request log (no sleeping — the
// reason the raw-clock lint rule exists), coalesced handles sharing one
// trace id, capacity-0 tracing reducing to the bare null-check path, the
// `trace` wire op through a real net::Session, and the --trace-ring /
// --slow-ms flags.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/json.h"
#include "common/timing.h"
#include "net/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/flags.h"
#include "service/service.h"

namespace pqs {
namespace {

using namespace std::chrono_literals;

/// RAII fake clock: installed for the test body, removed on every exit.
struct FakeClock {
  explicit FakeClock(std::uint64_t now_ns) {
    obs::set_fake_clock_ns_for_testing(now_ns);
  }
  ~FakeClock() { obs::set_fake_clock_ns_for_testing(std::nullopt); }
  void advance_to(std::uint64_t now_ns) {
    obs::set_fake_clock_ns_for_testing(now_ns);
  }
};

// ---- Trace -----------------------------------------------------------------

TEST(TraceTest, SpansRecordNamesAndFakeClockTimes) {
  FakeClock clock(1000);
  obs::Trace trace(7);
  trace.span("submit");
  clock.advance_to(1500);
  trace.span("finish.done");

  const auto events = trace.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "submit");
  EXPECT_EQ(events[0].t_ns, 1000u);
  EXPECT_EQ(events[1].t_ns, 1500u);
  EXPECT_EQ(trace.total_ns(), 500u);
}

TEST(TraceTest, JsonTimesAreRelativeToTheFirstSpan) {
  // Two processes tracing the same work at different absolute clock
  // readings must serialize identically — the wire timeline starts at 0.
  FakeClock clock(123456789);
  obs::Trace trace(1);
  trace.span("submit");
  clock.advance_to(123456789 + 250);
  trace.span("finish.done");

  const Json json = trace.to_json();
  EXPECT_EQ(json.at("trace_id").as_uint(), 1u);
  EXPECT_EQ(json.at("total_ns").as_uint(), 250u);
  const auto& spans = json.at("spans").as_array();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].at("t_ns").as_uint(), 0u);
  EXPECT_EQ(spans[1].at("t_ns").as_uint(), 250u);
  EXPECT_EQ(spans[0].at("name").as_string(), "submit");
}

// ---- TraceStore ------------------------------------------------------------

TEST(TraceStoreTest, MintsSequentialIdsAndFindsRetiredTraces) {
  obs::TraceStore store({.capacity = 4});
  ASSERT_TRUE(store.enabled());
  auto first = store.mint();
  auto second = store.mint();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id(), 1u);
  EXPECT_EQ(second->id(), 2u);
  // Live traces are not findable; retiring files them.
  EXPECT_EQ(store.find(1), nullptr);
  store.retire(first);
  EXPECT_EQ(store.find(1), first);
}

TEST(TraceStoreTest, RingEvictsOldestFirst) {
  obs::TraceStore store({.capacity = 2});
  auto a = store.mint();
  auto b = store.mint();
  auto c = store.mint();
  store.retire(a);
  store.retire(b);
  store.retire(c);  // evicts a
  EXPECT_EQ(store.find(a->id()), nullptr);
  EXPECT_NE(store.find(b->id()), nullptr);
  EXPECT_NE(store.find(c->id()), nullptr);
}

TEST(TraceStoreTest, CapacityZeroDisablesMinting) {
  obs::TraceStore store({.capacity = 0});
  EXPECT_FALSE(store.enabled());
  EXPECT_EQ(store.mint(), nullptr);
}

TEST(TraceStoreTest, SlowRequestsAreCountedKeptAndCalledBack) {
  FakeClock clock(0);
  obs::MetricsRegistry registry;
  obs::TraceStore store(
      {.capacity = 8, .slow_request_ns = 1000000, .slow_capacity = 2});
  std::vector<std::uint64_t> callback_ids;
  store.set_slow_sink(&registry, [&callback_ids](const obs::Trace& trace) {
    callback_ids.push_back(trace.id());
  });

  const auto traced_request = [&](std::uint64_t duration_ns) {
    auto trace = store.mint();
    clock.advance_to(duration_ns);
    trace->span("submit");
    clock.advance_to(duration_ns * 2);
    trace->span("finish.done");
    store.retire(trace);
    return trace->id();
  };
  const std::uint64_t fast = traced_request(1000);     // 1us: not slow
  const std::uint64_t slow = traced_request(2000000);  // 2ms: slow

  EXPECT_EQ(registry.counter("trace.slow_requests").value(), 1u);
  ASSERT_EQ(callback_ids.size(), 1u);
  EXPECT_EQ(callback_ids[0], slow);
  const auto kept = store.slow_requests();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0]->id(), slow);
  EXPECT_NE(kept[0]->id(), fast);
}

// ---- the Service end to end ------------------------------------------------

std::atomic<bool> g_gate{false};
std::atomic<int> g_running{0};

/// Spins at a cancellation checkpoint until the gate opens — pins the
/// single worker so the next submits coalesce / stay queued
/// DETERMINISTICALLY instead of racing a microsecond grover run.
class TraceGatedAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "trace-gated"; }
  std::string_view summary() const override { return "test driver"; }
  SearchReport run(RunContext& ctx) const override {
    g_running.fetch_add(1);
    struct Guard {
      ~Guard() { g_running.fetch_sub(1); }
    } guard;
    while (!g_gate.load()) {
      ctx.checkpoint();  // a cancelled job unwinds from HERE
      std::this_thread::sleep_for(1ms);
    }
    SearchReport report;
    report.measured = ctx.marked.front();
    report.correct = true;
    report.queries = 1;
    report.queries_per_trial = 1;
    report.success_probability = 1.0;
    return report;
  }
};

Registry trace_test_registry() {
  Registry registry = Registry::with_builtin_algorithms();
  registry.register_algorithm(
      "trace-gated", [] { return std::make_unique<TraceGatedAlgorithm>(); });
  return registry;
}

void reset_gate() {
  g_gate = false;
  g_running = 0;
}

bool wait_until(const std::function<bool()>& condition) {
  Stopwatch watch;
  while (watch.millis() < 10000) {
    if (condition()) {
      return true;
    }
    std::this_thread::sleep_for(1ms);
  }
  return condition();
}

SearchSpec gated_spec(std::uint64_t seed) {
  SearchSpec spec = SearchSpec::single_target(64, 1, 9);
  spec.algorithm = "trace-gated";
  spec.seed = seed;
  return spec;
}

/// A grk spec with shots: the one adapter path that crosses EVERY traced
/// layer — planner (plan.* spans) and the BatchRunner fan-out (shots.*).
SearchSpec trace_test_spec(std::uint64_t seed) {
  SearchSpec spec = SearchSpec::single_target(4096, 4, 2731);
  spec.algorithm = "grk";
  spec.shots = 32;
  spec.seed = seed;
  return spec;
}

std::vector<std::string> span_names(const obs::Trace& trace) {
  std::vector<std::string> names;
  for (const auto& event : trace.events()) {
    names.emplace_back(event.name);
  }
  return names;
}

TEST(TraceServiceTest, CompletedJobHasTheFullSpanTimeline) {
  Service service({.threads = 1});
  JobHandle handle = service.submit(trace_test_spec(1));
  ASSERT_EQ(handle.wait(), JobStatus::kDone);

  ASSERT_NE(handle.trace_id(), 0u);
  auto trace = handle.trace();
  ASSERT_NE(trace, nullptr);
  const auto names = span_names(*trace);
  // The request crossed every layer: service -> engine -> planner -> shots.
  const std::vector<std::string> expected = {
      "submit",      "queue.enqueued", "exec.begin", "engine.run.begin",
      "plan.computed", "shots.begin",  "shots.end",  "engine.run.end",
      "finish.done"};
  EXPECT_EQ(names, expected);
  // Retired into the store, findable by id for the `trace` wire op.
  EXPECT_EQ(service.trace_store().find(handle.trace_id()), trace);
}

TEST(TraceServiceTest, PlanCacheHitShowsInTheSecondTimeline) {
  Service service({.threads = 1, .result_cache_capacity = 1});
  ASSERT_EQ(service.submit(trace_test_spec(1)).wait(), JobStatus::kDone);
  // A different seed misses the result cache but reuses the plan.
  JobHandle second = service.submit(trace_test_spec(2));
  ASSERT_EQ(second.wait(), JobStatus::kDone);
  const auto names = span_names(*second.trace());
  EXPECT_NE(std::find(names.begin(), names.end(), "plan.cache_hit"),
            names.end());
}

TEST(TraceServiceTest, ResultCacheHitIsUntraced) {
  Service service({.threads = 1});
  ASSERT_EQ(service.submit(trace_test_spec(1)).wait(), JobStatus::kDone);
  JobHandle repeat = service.submit(trace_test_spec(1));
  ASSERT_EQ(repeat.wait(), JobStatus::kDone);
  // Served from the result LRU: nothing executed, nothing traced.
  EXPECT_EQ(repeat.trace_id(), 0u);
  EXPECT_EQ(repeat.trace(), nullptr);
}

TEST(TraceServiceTest, CoalescedHandlesShareOneTraceId) {
  // Pin the single worker so the twin submit coalesces onto the queued
  // first instead of hitting the result cache.
  reset_gate();
  Service service({.threads = 1}, trace_test_registry());
  JobHandle blocker = service.submit(gated_spec(99));
  ASSERT_TRUE(wait_until([] { return g_running.load() == 1; }));
  JobHandle first = service.submit(trace_test_spec(5));
  JobHandle twin = service.submit(trace_test_spec(5));
  g_gate = true;
  ASSERT_EQ(first.wait(), JobStatus::kDone);
  ASSERT_EQ(twin.wait(), JobStatus::kDone);
  ASSERT_EQ(blocker.wait(), JobStatus::kDone);
  EXPECT_NE(first.trace_id(), 0u);
  EXPECT_EQ(first.trace_id(), twin.trace_id());
  EXPECT_EQ(first.trace(), twin.trace());
}

TEST(TraceServiceTest, CapacityZeroDisablesTracingEntirely) {
  Service service({.threads = 1, .trace = {.capacity = 0}});
  JobHandle handle = service.submit(trace_test_spec(1));
  ASSERT_EQ(handle.wait(), JobStatus::kDone);
  EXPECT_EQ(handle.trace_id(), 0u);
  EXPECT_EQ(handle.trace(), nullptr);
  EXPECT_FALSE(service.trace_store().enabled());
}

TEST(TraceServiceTest, CancelledJobRetiresWithACancelSpan) {
  reset_gate();
  Service service({.threads = 1}, trace_test_registry());
  JobHandle blocker = service.submit(gated_spec(1));
  ASSERT_TRUE(wait_until([] { return g_running.load() == 1; }));
  JobHandle queued = service.submit(trace_test_spec(2));
  queued.cancel();  // cancelled while still queued — it never starts
  g_gate = true;
  ASSERT_EQ(blocker.wait(), JobStatus::kDone);
  ASSERT_EQ(queued.wait(), JobStatus::kCancelled);
  auto trace = queued.trace();
  ASSERT_NE(trace, nullptr);
  const auto names = span_names(*trace);
  EXPECT_EQ(names.back(), "finish.cancelled");
}

// ---- the `trace` wire op through a real Session ----------------------------

std::string wire_submit(const std::string& id, std::uint64_t seed) {
  Json spec = Json::make_object();
  spec["algorithm"] = std::string("grover");
  spec["n_items"] = std::uint64_t{64};
  spec["n_blocks"] = std::uint64_t{1};
  Json marked = Json::make_array();
  marked.push_back(std::uint64_t{9});
  spec["marked"] = std::move(marked);
  spec["seed"] = seed;
  Json request = Json::make_object();
  request["op"] = std::string("submit");
  request["id"] = id;
  request["spec"] = std::move(spec);
  return request.dump();
}

TEST(TraceWireTest, TraceOpReturnsTheTimelineAfterTheResult) {
  Service service({.threads = 1});
  std::vector<std::string> lines;
  Mutex lines_mutex;
  net::Session session(service, [&](const std::string& line) {
    LockGuard lock(lines_mutex);
    lines.push_back(line);
    return true;
  });
  session.handle_line(wire_submit("job-1", 3));
  session.drain();  // result announced; the trace op arrives AFTER it

  session.handle_line(R"({"op":"trace","id":"job-1"})");
  Json trace_event;
  {
    LockGuard lock(lines_mutex);
    trace_event = Json::parse(lines.back());
  }
  EXPECT_EQ(trace_event.at("event").as_string(), "trace");
  EXPECT_EQ(trace_event.at("id").as_string(), "job-1");
  const Json& trace = trace_event.at("trace");
  EXPECT_GT(trace.at("trace_id").as_uint(), 0u);
  EXPECT_GE(trace.at("spans").as_array().size(), 5u);

  // Unknown ids answer with an error event, not a dropped line.
  session.handle_line(R"({"op":"trace","id":"never-submitted"})");
  {
    LockGuard lock(lines_mutex);
    trace_event = Json::parse(lines.back());
  }
  EXPECT_EQ(trace_event.at("event").as_string(), "error");
  EXPECT_NE(trace_event.at("message").as_string().find("no trace"),
            std::string::npos);
}

TEST(TraceWireTest, MetricsOpDumpsTheRegistrySnapshot) {
  Service service({.threads = 1});
  std::vector<std::string> lines;
  Mutex lines_mutex;
  net::Session session(service, [&](const std::string& line) {
    LockGuard lock(lines_mutex);
    lines.push_back(line);
    return true;
  });
  session.handle_line(wire_submit("m-1", 4));
  session.drain();

  session.handle_line(R"({"op":"metrics","id":"m"})");
  Json event;
  {
    LockGuard lock(lines_mutex);
    event = Json::parse(lines.back());
  }
  EXPECT_EQ(event.at("event").as_string(), "metrics");
  EXPECT_EQ(event.at("id").as_string(), "m");
  const Json& metrics = event.at("metrics");
  EXPECT_EQ(metrics.at("counters").at("service.submitted").as_uint(), 1u);
  EXPECT_TRUE(metrics.has("gauges"));
  EXPECT_TRUE(metrics.has("histograms"));
}

// ---- flags -----------------------------------------------------------------

TEST(TraceFlagsTest, TraceRingAndSlowMsMapOntoTraceStoreOptions) {
  const std::vector<const char*> args = {"pqs_serve", "--trace-ring=17",
                                         "--slow-ms=250"};
  Cli cli(static_cast<int>(args.size()), args.data());
  const ServiceOptions options = service::parse_service_flags(cli);
  EXPECT_EQ(options.trace.capacity, 17u);
  EXPECT_EQ(options.trace.slow_request_ns, 250u * 1000000u);
}

TEST(TraceFlagsTest, TraceRingZeroDisablesAndNegativesAreRejected) {
  {
    const std::vector<const char*> args = {"pqs_serve", "--trace-ring=0"};
    Cli cli(static_cast<int>(args.size()), args.data());
    EXPECT_EQ(service::parse_service_flags(cli).trace.capacity, 0u);
  }
  {
    const std::vector<const char*> args = {"pqs_serve", "--slow-ms=-1"};
    Cli cli(static_cast<int>(args.size()), args.data());
    EXPECT_THROW((void)service::parse_service_flags(cli), CheckFailure);
  }
}

}  // namespace
}  // namespace pqs

// The wire-format contract: every SearchSpec / SearchReport field survives
// to_json -> dump -> parse -> from_json unchanged, for randomized values of
// every field — the property pqs_serve and the coalescing key stand on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/serialize.h"
#include "common/check.h"
#include "common/json.h"
#include "common/random.h"

namespace pqs {
namespace {

// ---- Json basics -----------------------------------------------------------

TEST(JsonTest, ParsesAndDumpsCanonically) {
  const Json v = Json::parse(
      R"(  {"b": [1, 2.5, "x\n", true, null], "a": {"k": 18446744073709551615}} )");
  // Keys sort, whitespace drops, uint64 stays exact, doubles keep a ".0"
  // marker so kinds survive the round trip.
  EXPECT_EQ(v.dump(),
            R"({"a":{"k":18446744073709551615},"b":[1,2.5,"x\n",true,null]})");
  EXPECT_EQ(Json::parse(v.dump()).dump(), v.dump());
  EXPECT_EQ(v.at("a").at("k").as_uint(), 18446744073709551615ULL);
}

TEST(JsonTest, IntegerAndDoubleKindsAreDistinct) {
  EXPECT_TRUE(Json::parse("7").is_uint());
  EXPECT_TRUE(Json::parse("7.0").is_double());
  EXPECT_EQ(Json(1.0).dump(), "1.0");
  EXPECT_EQ(Json(std::uint64_t{1}).dump(), "1");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse("{\"a\":1,}"), CheckFailure);
  EXPECT_THROW((void)Json::parse("{\"a\":1} trailing"), CheckFailure);
  EXPECT_THROW((void)Json::parse("{\"a\":1,\"a\":2}"), CheckFailure);
  EXPECT_THROW((void)Json::parse("nulL"), CheckFailure);
}

TEST(JsonTest, RejectsAbsurdNestingInsteadOfOverflowingTheStack) {
  // A hostile client line must produce a parse error, not a segfault of
  // the serving process.
  const std::string bomb(200000, '[');
  EXPECT_THROW((void)Json::parse(bomb), CheckFailure);
  EXPECT_NO_THROW((void)Json::parse("[[[[[[[[[[1]]]]]]]]]]"));
}

TEST(JsonTest, RejectsSurrogateEscapesInsteadOfEmittingCesu8) {
  EXPECT_THROW((void)Json::parse(R"("\ud83d\ude00")"), CheckFailure);
  // Basic-plane escapes and raw UTF-8 both decode fine.
  EXPECT_EQ(Json::parse(R"("é中")").as_string(), "é中");
  EXPECT_EQ(Json::parse(R"("😀")").as_string(), "😀");
}

TEST(JsonTest, MissingKeyErrorNamesTheKey) {
  const Json v = Json::parse(R"({"present":1})");
  try {
    (void)v.at("absent");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("absent"), std::string::npos);
  }
}

// ---- randomized spec round trip --------------------------------------------

SearchSpec random_spec(Rng& rng) {
  static const std::vector<std::string> kAlgorithms{
      "auto", "grover", "grk", "multi", "certainty", "noisy", "classical"};
  SearchSpec spec;
  spec.algorithm = kAlgorithms[rng.uniform_below(kAlgorithms.size())];
  const unsigned n = 2 + static_cast<unsigned>(rng.uniform_below(20));
  spec.n_items = std::uint64_t{1} << n;
  spec.n_blocks = std::uint64_t{1} << rng.uniform_below(n / 2 + 1);
  const std::size_t n_marked = 1 + rng.uniform_below(4);
  for (std::size_t i = 0; i < n_marked; ++i) {
    spec.marked.push_back(rng.uniform_below(spec.n_items));
  }
  spec.backend = static_cast<qsim::BackendKind>(rng.uniform_below(3));
  spec.batch.threads = static_cast<unsigned>(rng.uniform_below(8));
  spec.noise.kind = static_cast<qsim::NoiseKind>(rng.uniform_below(4));
  spec.noise.probability = static_cast<double>(rng.uniform_below(1000)) / 1e4;
  spec.seed = rng.next();  // any uint64, including > 2^53
  spec.min_success = static_cast<double>(rng.uniform_below(1000)) / 1e3;
  if (rng.uniform_below(2) == 0) {
    spec.l1 = rng.uniform_below(1u << 20);
  }
  if (rng.uniform_below(2) == 0) {
    spec.l2 = rng.uniform_below(1u << 20);
  }
  spec.shots = 1 + rng.uniform_below(1u << 16);
  return spec;
}

void expect_specs_equal(const SearchSpec& a, const SearchSpec& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.n_items, b.n_items);
  EXPECT_EQ(a.n_blocks, b.n_blocks);
  EXPECT_EQ(a.marked, b.marked);
  EXPECT_EQ(a.backend, b.backend);
  EXPECT_EQ(a.batch.threads, b.batch.threads);
  EXPECT_EQ(a.noise.kind, b.noise.kind);
  EXPECT_EQ(a.noise.probability, b.noise.probability);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.min_success, b.min_success);
  EXPECT_EQ(a.l1, b.l1);
  EXPECT_EQ(a.l2, b.l2);
  EXPECT_EQ(a.shots, b.shots);
}

TEST(SerializeSpecTest, EveryFieldRoundTripsForRandomSpecs) {
  Rng rng(20260729);
  for (int iteration = 0; iteration < 300; ++iteration) {
    const SearchSpec spec = random_spec(rng);
    const Json json = api::to_json(spec);
    // Through the actual wire: dump to a string and parse back.
    const SearchSpec back = api::spec_from_json(Json::parse(json.dump()));
    expect_specs_equal(spec, back);
  }
}

TEST(SerializeSpecTest, SeedBeyondDoublePrecisionSurvives) {
  SearchSpec spec = SearchSpec::single_target(4, 1, 3);
  spec.seed = 0xFFFFFFFFFFFFFFFFULL;  // would mangle through a double
  spec.n_items = std::uint64_t{1} << 62;
  spec.marked = {(std::uint64_t{1} << 62) - 1};
  const SearchSpec back =
      api::spec_from_json(Json::parse(api::to_json(spec).dump()));
  EXPECT_EQ(back.seed, 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(back.n_items, std::uint64_t{1} << 62);
  EXPECT_EQ(back.marked.front(), (std::uint64_t{1} << 62) - 1);
}

TEST(SerializeSpecTest, UnknownFieldFailsNamingTheField) {
  try {
    (void)api::spec_from_json(Json::parse(R"({"algoritm":"grk"})"));
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("algoritm"), std::string::npos);
  }
}

TEST(SerializeSpecTest, PredicateSpecsCannotSerialize) {
  SearchSpec spec;
  spec.n_items = 64;
  spec.predicate = [](qsim::Index x) { return x == 9; };
  EXPECT_THROW((void)api::to_json(spec), CheckFailure);
}

// ---- randomized report round trip ------------------------------------------

TEST(SerializeReportTest, EveryFieldRoundTripsForRandomReports) {
  Rng rng(424242);
  for (int iteration = 0; iteration < 300; ++iteration) {
    SearchReport report;
    report.algorithm = iteration % 2 == 0 ? "grk" : "noisy";
    report.measured = rng.next();
    report.block_answer = rng.uniform_below(2) == 0;
    report.correct = rng.uniform_below(2) == 0;
    report.queries = rng.next();
    report.queries_per_trial = rng.next();
    report.trials = 1 + rng.uniform_below(1000);
    report.success_probability =
        static_cast<double>(rng.uniform_below(10000)) / 1e4;
    report.l1 = rng.uniform_below(1u << 20);
    report.l2 = rng.uniform_below(1u << 20);
    report.backend_used = static_cast<qsim::BackendKind>(rng.uniform_below(3));
    report.plan_cache_hit = rng.uniform_below(2) == 0;
    report.queue_ns = rng.next();
    report.plan_ns = rng.next();
    report.exec_ns = rng.next();
    report.detail = "detail line \"quoted\" #" + std::to_string(iteration);

    const SearchReport back =
        api::report_from_json(Json::parse(api::to_json(report).dump()));
    EXPECT_EQ(back.algorithm, report.algorithm);
    EXPECT_EQ(back.measured, report.measured);
    EXPECT_EQ(back.block_answer, report.block_answer);
    EXPECT_EQ(back.correct, report.correct);
    EXPECT_EQ(back.queries, report.queries);
    EXPECT_EQ(back.queries_per_trial, report.queries_per_trial);
    EXPECT_EQ(back.trials, report.trials);
    EXPECT_EQ(back.success_probability, report.success_probability);
    EXPECT_EQ(back.l1, report.l1);
    EXPECT_EQ(back.l2, report.l2);
    EXPECT_EQ(back.backend_used, report.backend_used);
    EXPECT_EQ(back.plan_cache_hit, report.plan_cache_hit);
    EXPECT_EQ(back.queue_ns, report.queue_ns);
    EXPECT_EQ(back.plan_ns, report.plan_ns);
    EXPECT_EQ(back.exec_ns, report.exec_ns);
    EXPECT_EQ(back.detail, report.detail);
  }
}

// ---- canonical_key ---------------------------------------------------------

TEST(CanonicalKeyTest, ThreadFanOutDoesNotChangeTheKey) {
  SearchSpec a = SearchSpec::single_target(4096, 4, 2731);
  SearchSpec b = a;
  b.batch.threads = 16;  // different execution shape, identical answer
  EXPECT_EQ(api::canonical_key(a), api::canonical_key(b));

  b.seed = a.seed + 1;  // different answer stream
  EXPECT_NE(api::canonical_key(a), api::canonical_key(b));
}

TEST(CanonicalKeyTest, PredicateAndExplicitMarkedSetCoalesce) {
  SearchSpec by_predicate;
  by_predicate.n_items = 256;
  by_predicate.n_blocks = 4;
  by_predicate.predicate = [](qsim::Index x) { return x % 100 == 7; };

  SearchSpec by_list = by_predicate;
  by_list.predicate = nullptr;
  by_list.marked = {207, 7, 107};  // same set, scrambled order
  EXPECT_EQ(api::canonical_key(by_predicate), api::canonical_key(by_list));
}

}  // namespace
}  // namespace pqs

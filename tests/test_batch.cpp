// Tests for the batched shot-execution layer: deterministic per-shot RNG
// streams (thread-count independent), tallying, and the Simulator wiring.
#include "qsim/batch.h"

#include <gtest/gtest.h>

#include "common/math.h"
#include "grover/grover.h"
#include "oracle/database.h"
#include "oracle/marked_set.h"
#include "qsim/backend.h"
#include "qsim/simulator.h"

namespace pqs::qsim {
namespace {

TEST(BatchRunnerTest, OutcomesAreIndependentOfThreadCount) {
  const oracle::Database db = oracle::Database::with_qubits(8, 17);
  const auto state =
      grover::evolve(db, grover::optimal_iterations(pow2(8)));
  const BatchRunner serial({.threads = 1, .seed = 99});
  const BatchRunner parallel({.threads = 4, .seed = 99});
  const auto body = [&state](std::uint64_t, Rng& rng) {
    return state.sample(rng);
  };
  EXPECT_EQ(serial.map_shots(500, body), parallel.map_shots(500, body));
}

TEST(BatchRunnerTest, DistinctSeedsGiveDistinctStreams) {
  const BatchRunner a({.threads = 1, .seed = 1});
  const BatchRunner b({.threads = 1, .seed = 2});
  const auto body = [](std::uint64_t, Rng& rng) {
    return static_cast<Index>(rng.uniform_below(1u << 20));
  };
  EXPECT_NE(a.map_shots(64, body), b.map_shots(64, body));
}

TEST(BatchRunnerTest, ShotStreamsAreDecorrelated) {
  const BatchRunner runner({.threads = 1, .seed = 5});
  Rng r0 = runner.shot_rng(0);
  Rng r1 = runner.shot_rng(1);
  int equal = 0;
  for (int i = 0; i < 16; ++i) {
    equal += r0.next() == r1.next() ? 1 : 0;
  }
  EXPECT_EQ(equal, 0);
}

TEST(BatchRunnerTest, TallyCountsAndModeWithTieBreak) {
  const std::vector<Index> outcomes{3, 1, 3, 1, 2};
  const auto report = BatchRunner::tally(outcomes, 7);
  EXPECT_EQ(report.shots, 5u);
  EXPECT_EQ(report.queries_per_shot, 7u);
  EXPECT_EQ(report.counts.at(1), 2u);
  EXPECT_EQ(report.counts.at(3), 2u);
  EXPECT_EQ(report.counts.at(2), 1u);
  EXPECT_EQ(report.mode, 1u);  // tie resolves to the smallest outcome
  EXPECT_NEAR(report.mode_frequency, 0.4, 1e-12);
}

TEST(BatchRunnerTest, SampleShotsAgreeBetweenStateAndBackends) {
  const unsigned n = 8;
  const oracle::Database db = oracle::Database::with_qubits(n, 200);
  const std::uint64_t iters = grover::optimal_iterations(pow2(n));
  const auto state = grover::evolve(db, iters);
  const auto backend =
      grover::evolve_on_backend(db, iters, BackendKind::kSymmetry);
  const BatchRunner runner({.threads = 2, .seed = 31337});
  const auto via_state = runner.sample_shots(state, 300, iters);
  const auto via_backend = runner.sample_shots(*backend, 300, iters);
  EXPECT_EQ(via_state.mode, 200u);
  EXPECT_EQ(via_backend.mode, 200u);
  EXPECT_GT(via_state.mode_frequency, 0.95);
  EXPECT_GT(via_backend.mode_frequency, 0.95);
}

TEST(SimulatorBackendTest, SymmetryBackendShotsMatchDenseMode) {
  const unsigned n = 8, k = 2;
  const oracle::Database db = oracle::Database::with_qubits(n, 200);
  Circuit circuit(n);
  for (int i = 0; i < 8; ++i) {
    circuit.grover_iteration();
  }
  Simulator dense(6), symmetry(6);
  symmetry.set_backend(BackendKind::kSymmetry);
  const auto dense_report = dense.run_block_shots(circuit, db.view(), k, 400);
  const auto sym_report = symmetry.run_block_shots(circuit, db.view(), k, 400);
  EXPECT_EQ(dense_report.mode, 200u >> (n - k));
  EXPECT_EQ(sym_report.mode, dense_report.mode);
  EXPECT_EQ(sym_report.shots, 400u);
}

TEST(SimulatorBackendTest, SymmetryRejectsGateLevelCircuits) {
  const oracle::Database db = oracle::Database::with_qubits(5, 3);
  Circuit circuit(5);
  circuit.oracle();
  circuit.global_diffusion_gate_level();
  Simulator sim(1);
  sim.set_backend(BackendKind::kSymmetry);
  EXPECT_THROW(sim.run_shots(circuit, db.view(), 10), CheckFailure);
}

TEST(SimulatorBackendTest, RunStateRejectsSymmetry) {
  const oracle::Database db = oracle::Database::with_qubits(5, 3);
  const auto circuit = make_grover_circuit(5, 2);
  Simulator sim(1);
  sim.set_backend(BackendKind::kSymmetry);
  EXPECT_THROW(sim.run_state(circuit, db.view()), CheckFailure);
}

TEST(SimulatorBackendTest, SymmetryNoiseRunsPerTheSupportMatrix) {
  // PR 2 taught the symmetry engine the class-moment noise channel; the
  // Simulator follows backend_supports_noise: a single-target power-of-two
  // spec runs noisy trajectories on kSymmetry...
  const oracle::Database db = oracle::Database::with_qubits(6, 20);
  const auto circuit = make_grover_circuit(6, 4);
  Simulator clean(9), noisy_a(9), noisy_b(9);
  clean.set_backend(BackendKind::kSymmetry);
  noisy_a.set_backend(BackendKind::kSymmetry);
  noisy_b.set_backend(BackendKind::kSymmetry);
  noisy_a.set_noise({NoiseKind::kDepolarizing, 0.05});
  noisy_b.set_noise({NoiseKind::kDepolarizing, 0.05});
  const auto clean_report = clean.run_shots(circuit, db.view(), 150);
  const auto noisy_report = noisy_a.run_shots(circuit, db.view(), 150);
  EXPECT_EQ(clean_report.mode, 20u);
  EXPECT_GT(clean_report.mode_frequency, noisy_report.mode_frequency);
  // ...reproducibly from the Simulator seed...
  EXPECT_EQ(noisy_report.counts,
            noisy_b.run_shots(circuit, db.view(), 150).counts);
}

TEST(SimulatorBackendTest, SymmetryNoiseRejectsUnsupportedSpecs) {
  // ...while a multi-marked oracle (no single-target class split) still
  // fails loudly before any shot runs.
  const oracle::MarkedDatabase db(32, {3, 9});
  const auto circuit = make_grover_circuit(5, 2);
  Simulator sim(1);
  sim.set_backend(BackendKind::kSymmetry);
  sim.set_noise({NoiseKind::kDepolarizing, 0.05});
  EXPECT_THROW(sim.run_shots(circuit, db.view(), 10), CheckFailure);
}

TEST(SimulatorBackendTest, BatchThreadCountDoesNotChangeResults) {
  const oracle::Database db = oracle::Database::with_qubits(7, 100);
  const auto circuit = make_grover_circuit(7, 6);
  Simulator one(42), many(42);
  one.set_batch({.threads = 1});
  many.set_batch({.threads = 8});
  const auto ra = one.run_shots(circuit, db.view(), 300);
  const auto rb = many.run_shots(circuit, db.view(), 300);
  EXPECT_EQ(ra.counts, rb.counts);
}

TEST(SimulatorBackendTest, NoisyTrajectoriesAreSeedReproducible) {
  const oracle::Database db = oracle::Database::with_qubits(6, 20);
  const auto circuit = make_grover_circuit(6, 4);
  Simulator a(9), b(9);
  a.set_noise({NoiseKind::kDepolarizing, 0.05});
  b.set_noise({NoiseKind::kDepolarizing, 0.05});
  EXPECT_EQ(a.run_shots(circuit, db.view(), 100).counts,
            b.run_shots(circuit, db.view(), 100).counts);
}

}  // namespace
}  // namespace pqs::qsim

// Randomized property tests across the simulator and algorithm layers:
// invariants that must hold for EVERY circuit / state / shape, checked on
// randomly generated instances with fixed seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.h"
#include "common/random.h"
#include "grover/grover.h"
#include "oracle/database.h"
#include "partial/analytic.h"
#include "partial/grk.h"
#include "partial/optimizer.h"
#include "qsim/circuit.h"
#include "qsim/gates2.h"
#include "qsim/kernels.h"
#include "qsim/state_vector.h"

namespace pqs {
namespace {

using qsim::Amplitude;
using qsim::Gate2;
using qsim::StateVector;

Gate2 random_gate(Rng& rng) {
  return qsim::gates::U(rng.uniform(0.0, kPi), rng.uniform(0.0, 2.0 * kPi),
                        rng.uniform(0.0, 2.0 * kPi));
}

class RandomCircuitProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomCircuitProperty, NormIsPreservedByAnyOpSequence) {
  const unsigned n = 6;
  Rng rng(10'000 + GetParam());
  auto state = StateVector::uniform(n);
  const oracle::Database db =
      oracle::Database::with_qubits(n, rng.uniform_below(pow2(n)));
  for (int step = 0; step < 60; ++step) {
    switch (rng.uniform_below(7)) {
      case 0:
        state.apply_gate1(static_cast<unsigned>(rng.uniform_below(n)),
                          random_gate(rng));
        break;
      case 1:
        db.apply_phase_oracle(state);
        break;
      case 2:
        state.reflect_about_uniform();
        break;
      case 3:
        state.reflect_blocks_about_uniform(
            1 + static_cast<unsigned>(rng.uniform_below(n - 1)));
        break;
      case 4:
        state.rotate_blocks_about_uniform(
            1 + static_cast<unsigned>(rng.uniform_below(n - 1)),
            rng.uniform(0.0, 2.0 * kPi));
        break;
      case 5:
        state.reflect_non_target_about_their_mean(db.target());
        break;
      case 6: {
        const auto qa = static_cast<unsigned>(rng.uniform_below(n));
        auto qb = static_cast<unsigned>(rng.uniform_below(n - 1));
        qb += qb >= qa ? 1 : 0;
        state.apply_gate2(qa, qb,
                          qsim::gates::CPhase(rng.uniform(0.0, kPi)));
        break;
      }
    }
    ASSERT_NEAR(state.norm_squared(), 1.0, 1e-9) << "step " << step;
  }
}

TEST_P(RandomCircuitProperty, ReflectionsAreInvolutions) {
  const unsigned n = 5;
  Rng rng(20'000 + GetParam());
  // Random state.
  std::vector<Amplitude> amps(pow2(n));
  for (auto& a : amps) {
    a = Amplitude{rng.normal(), rng.normal()};
  }
  auto state = StateVector::from_amplitudes(std::move(amps));
  state.normalize();
  const auto before = state;

  const unsigned k = 1 + static_cast<unsigned>(rng.uniform_below(n - 1));
  const qsim::Index t = rng.uniform_below(pow2(n));
  state.reflect_blocks_about_uniform(k);
  state.reflect_blocks_about_uniform(k);
  state.reflect_non_target_about_their_mean(t);
  state.reflect_non_target_about_their_mean(t);
  state.phase_flip(t);
  state.phase_flip(t);
  EXPECT_LT(state.linf_distance(before), 1e-10);
}

TEST_P(RandomCircuitProperty, GateSequenceUndoneByAdjointsInReverse) {
  const unsigned n = 5;
  Rng rng(30'000 + GetParam());
  auto state = StateVector::uniform(n);
  const auto before = state;

  std::vector<std::pair<unsigned, Gate2>> applied;
  for (int step = 0; step < 25; ++step) {
    const auto q = static_cast<unsigned>(rng.uniform_below(n));
    const Gate2 g = random_gate(rng);
    state.apply_gate1(q, g);
    applied.emplace_back(q, g);
  }
  for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
    state.apply_gate1(it->first, it->second.adjoint());
  }
  EXPECT_LT(state.linf_distance(before), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitProperty,
                         ::testing::Range(0u, 8u));

TEST(PhaseKickback, BitOracleWithMinusAncillaIsThePhaseOracle) {
  // The textbook bridge between the paper's bit oracle
  // T_f|x>|b> = |x>|b xor f(x)> and the phase oracle I_t the algorithms
  // use: with the ancilla in |-> the bit oracle kicks the phase back onto
  // the address register.
  const unsigned n = 5;
  const oracle::Database db = oracle::Database::with_qubits(n, 19);

  // (n+1)-qubit state: address register uniform, ancilla (top qubit) |->.
  auto big = qsim::StateVector::uniform(n + 1);
  big.apply_gate1(n, qsim::gates::Z());  // |+> -> |-> on the ancilla

  db.apply_bit_oracle(big);

  // Reference: phase oracle on the n-qubit register alone.
  auto small = qsim::StateVector::uniform(n);
  db.apply_phase_oracle(small);

  // big must equal small (x) |->: check both ancilla halves.
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  for (qsim::Index x = 0; x < pow2(n); ++x) {
    const Amplitude expected = small.amplitude(x) * inv_sqrt2;
    ASSERT_LT(std::abs(big.amplitude(x) - expected), 1e-12) << x;
    ASSERT_LT(std::abs(big.amplitude(x + pow2(n)) + expected), 1e-12) << x;
  }
}

TEST(PhaseKickback, ZeroAncillaJustRecordsTheBit) {
  // With the ancilla in |0>, T_f entangles instead of kicking back: the
  // address register alone is no longer in a pure uniform state.
  const unsigned n = 4;
  const oracle::Database db = oracle::Database::with_qubits(n, 3);
  auto big = qsim::StateVector::uniform(n + 1);
  // Zero out the ancilla-1 half to make the ancilla |0> exactly.
  for (qsim::Index x = 0; x < pow2(n); ++x) {
    big.set_amplitude(x + pow2(n), Amplitude{0.0, 0.0});
  }
  big.normalize();
  db.apply_bit_oracle(big);
  // Now the target's amplitude lives in the ancilla-1 half.
  EXPECT_NEAR(big.probability(3 + pow2(n)), 1.0 / 16.0, 1e-12);
  EXPECT_NEAR(big.probability(3), 0.0, 1e-12);
}

TEST(ModelInvariance, TargetPositionWithinBlockIsIrrelevant) {
  // The subspace model has no notion of WHERE in its block the target is;
  // the state vector must agree: all placements give identical block
  // probabilities after any (l1, l2).
  const unsigned n = 8, k = 2;
  double reference = -1.0;
  for (const qsim::Index offset : {0u, 1u, 31u, 63u}) {
    const oracle::Database db =
        oracle::Database::with_qubits(n, (2u << (n - k)) + offset);
    const auto state = partial::evolve_partial_search(db, k, 7, 3);
    const double p = state.block_probability(k, 2);
    if (reference < 0.0) {
      reference = p;
    } else {
      ASSERT_NEAR(p, reference, 1e-12) << "offset " << offset;
    }
  }
}

TEST(ModelInvariance, TargetBlockIdentityIsIrrelevant) {
  const unsigned n = 8, k = 3;
  double reference = -1.0;
  for (qsim::Index block = 0; block < 8; ++block) {
    const oracle::Database db =
        oracle::Database::with_qubits(n, (block << (n - k)) + 5);
    const auto state = partial::evolve_partial_search(db, k, 6, 2);
    const double p = state.block_probability(k, block);
    if (reference < 0.0) {
      reference = p;
    } else {
      ASSERT_NEAR(p, reference, 1e-12) << "block " << block;
    }
  }
}

TEST(QueryMeter, EveryAlgorithmPathChargesTheSameMeter) {
  // Query accounting must be consistent whether ops run via Database
  // methods, Circuit execution, or raw kernels + manual add_queries.
  const unsigned n = 6;
  Rng rng(4242);
  const oracle::Database db = oracle::Database::with_qubits(n, 9);

  db.reset_queries();
  grover::evolve(db, 7);
  EXPECT_EQ(db.queries(), 7u);

  db.reset_queries();
  const auto circuit = qsim::make_grover_circuit(n, 7);
  auto state = qsim::StateVector::uniform(n);
  db.add_queries(circuit.apply(state, db.view()));
  EXPECT_EQ(db.queries(), 7u);

  db.reset_queries();
  partial::evolve_partial_search(db, 2, 4, 2);
  EXPECT_EQ(db.queries(), 7u);
}

}  // namespace
}  // namespace pqs

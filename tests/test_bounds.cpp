#include "partial/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/math.h"

namespace pqs::partial {
namespace {

TEST(Bounds, FullSearchIsQuarterPi) {
  EXPECT_NEAR(full_search_coefficient(), 0.785, 5e-4);
}

TEST(Bounds, LowerBoundMatchesPaperTable) {
  // Section 3.1 table, "Lower bound" column.
  EXPECT_NEAR(lower_bound_coefficient(2), 0.230, 5e-4);
  EXPECT_NEAR(lower_bound_coefficient(3), 0.332, 5e-4);
  EXPECT_NEAR(lower_bound_coefficient(4), 0.393, 5e-4);
  EXPECT_NEAR(lower_bound_coefficient(5), 0.434, 5e-4);
  EXPECT_NEAR(lower_bound_coefficient(8), 0.508, 5e-4);
  EXPECT_NEAR(lower_bound_coefficient(32), 0.647, 5e-4);
}

TEST(Bounds, LowerBoundApproachesFullSearchAsKGrows) {
  double prev = 0.0;
  for (std::uint64_t k = 2; k <= 1u << 20; k *= 4) {
    const double lb = lower_bound_coefficient(k);
    EXPECT_GT(lb, prev);
    EXPECT_LT(lb, kQuarterPi);
    prev = lb;
  }
  EXPECT_NEAR(lower_bound_coefficient(1u << 20), kQuarterPi, 1e-3);
}

TEST(Bounds, NaiveBlockDiscardMatchesSection12) {
  // (pi/4) sqrt((K-1)/K) ~ (pi/4)(1 - 1/(2K)).
  EXPECT_NEAR(naive_block_discard_coefficient(2),
              kQuarterPi * std::sqrt(0.5), 1e-12);
  for (std::uint64_t k : {8u, 64u, 1024u}) {
    const double kd = static_cast<double>(k);
    EXPECT_NEAR(naive_block_discard_coefficient(k),
                kQuarterPi * (1.0 - 1.0 / (2.0 * kd)),
                kQuarterPi / (kd * kd));
  }
}

TEST(Bounds, LargeKConstantIsPoint425) {
  // 1 - (2/pi) arcsin(pi/4) = 0.4251... >= the paper's 0.42.
  EXPECT_NEAR(large_k_constant(), 0.425, 5e-4);
  EXPECT_GE(large_k_constant(), 0.42);
}

TEST(Bounds, OrderingLowerUpperNaiveFull) {
  // For every K: lower bound < large-K upper estimate < naive < pi/4.
  for (std::uint64_t k = 5; k <= 1u << 16; k *= 2) {
    const double lb = lower_bound_coefficient(k);
    const double ub = large_k_upper_coefficient(k);
    const double naive = naive_block_discard_coefficient(k);
    EXPECT_LT(lb, ub) << "K=" << k;
    EXPECT_LT(ub, naive) << "K=" << k;
    EXPECT_LT(naive, kQuarterPi) << "K=" << k;
  }
}

TEST(Bounds, ReductionCoefficientGeometricSeries) {
  // c sqrt(K)/(sqrt(K)-1) with c = pi/4 (1 - 1/sqrt(K)) gives exactly pi/4:
  // the lower-bound reduction is tight.
  for (std::uint64_t k : {2u, 4u, 16u, 256u}) {
    EXPECT_NEAR(reduction_total_coefficient(lower_bound_coefficient(k), k),
                kQuarterPi, 1e-12)
        << "K=" << k;
  }
}

TEST(Bounds, ReductionValidatesK) {
  EXPECT_THROW(reduction_total_coefficient(0.5, 1), CheckFailure);
}

TEST(Bounds, ClassicalFullExpected) {
  EXPECT_DOUBLE_EQ(classical_full_expected(1), 1.0);
  EXPECT_DOUBLE_EQ(classical_full_expected(99), 50.0);
  // Paper's leading form N/2 for large N.
  EXPECT_NEAR(classical_full_expected(1u << 20) /
                  (static_cast<double>(1u << 20) / 2.0),
              1.0, 1e-5);
}

TEST(Bounds, ClassicalPartialDeterministic) {
  EXPECT_EQ(classical_partial_deterministic(12, 3), 8u);
  EXPECT_EQ(classical_partial_deterministic(1024, 4), 768u);
}

TEST(Bounds, ClassicalPartialRandomizedPaperForm) {
  // N/2 (1 - 1/K^2).
  EXPECT_NEAR(classical_partial_randomized_paper(1000, 2), 375.0, 1e-9);
  EXPECT_NEAR(classical_partial_randomized_paper(1024, 4),
              512.0 * (1.0 - 1.0 / 16.0), 1e-9);
}

TEST(Bounds, ClassicalPartialExactFormSlightlyAbovePaperForm) {
  for (std::uint64_t k : {2u, 4u, 8u}) {
    const double paper = classical_partial_randomized_paper(4096, k);
    const double exact = classical_partial_randomized_exact(4096, k);
    EXPECT_GT(exact, paper) << "K=" << k;
    EXPECT_LT(exact - paper, 0.5) << "K=" << k;
  }
}

TEST(Bounds, ClassicalPartialSavingsVanishQuadratically) {
  // Savings over full search = N/2 * 1/K^2: the motivation of Section 1.1.
  const std::uint64_t n = 1 << 16;
  for (std::uint64_t k : {2u, 4u, 8u, 16u}) {
    const double savings = static_cast<double>(n) / 2.0 -
                           classical_partial_randomized_paper(n, k);
    EXPECT_NEAR(savings,
                static_cast<double>(n) / 2.0 /
                    (static_cast<double>(k) * static_cast<double>(k)),
                1e-9)
        << "K=" << k;
  }
}

TEST(Bounds, AppendixALowerBoundEqualsAlgorithmCost) {
  // The randomized algorithm meets the Appendix-A lower bound exactly (to
  // leading order): the algorithm is optimal.
  for (std::uint64_t k : {2u, 3u, 4u, 8u}) {
    EXPECT_DOUBLE_EQ(classical_partial_lower_bound(24 * k, k),
                     classical_partial_randomized_paper(24 * k, k));
  }
}

TEST(Bounds, QuantumBeatsClassicalAtScale) {
  // The whole point: (pi/4) sqrt(N)-scale vs N-scale.
  const std::uint64_t n = 1 << 20;
  const double quantum =
      lower_bound_coefficient(4) * std::sqrt(static_cast<double>(n));
  EXPECT_LT(quantum, classical_partial_randomized_paper(n, 4) / 100.0);
}

}  // namespace
}  // namespace pqs::partial

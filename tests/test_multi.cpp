#include "partial/multi.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/check.h"
#include "common/math.h"
#include "partial/optimizer.h"
#include "qsim/kernels.h"

namespace pqs::partial {
namespace {

std::vector<qsim::Index> cluster(unsigned n, unsigned k, qsim::Index block,
                                 std::uint64_t m) {
  std::vector<qsim::Index> marked;
  const qsim::Index base = block << (n - k);
  for (std::uint64_t i = 0; i < m; ++i) {
    marked.push_back(base + 2 * i + 1);
  }
  return marked;
}

TEST(CommonBlock, AcceptsClusteredRejectsSpread) {
  const oracle::MarkedDatabase good(256, cluster(8, 2, 1, 3));
  EXPECT_EQ(common_block(good, 2), 1u);
  const oracle::MarkedDatabase bad(256, {3, 200});
  EXPECT_THROW(common_block(bad, 2), CheckFailure);
  const oracle::MarkedDatabase empty(256, {});
  EXPECT_THROW(common_block(empty, 2), CheckFailure);
}

TEST(MultiModel, ReducesToPaperModelAtMEqualsOne) {
  const SubspaceModel m1(1 << 12, 8);
  const SubspaceModel m1b(1 << 12, 8, 1);
  const auto a = m1.run_grk(30, 10);
  const auto b = m1b.run_grk(30, 10);
  EXPECT_LT(std::abs(a.a_t - b.a_t), 1e-15);
  EXPECT_LT(std::abs(a.a_o - b.a_o), 1e-15);
}

TEST(MultiModel, GroverAngleScalesWithSqrtM) {
  // One global iteration advances a_t by ~2 sqrt(M/N): check the start.
  const std::uint64_t n_items = 1 << 16;
  for (const std::uint64_t m : {1u, 4u, 16u}) {
    const SubspaceModel model(n_items, 4, m);
    const auto s = model.uniform_start();
    EXPECT_NEAR(std::abs(s.a_t),
                std::sqrt(static_cast<double>(m) /
                          static_cast<double>(n_items)),
                1e-12)
        << "M=" << m;
  }
}

TEST(MultiModel, RejectsOverfullBlock) {
  EXPECT_THROW(SubspaceModel(64, 4, 16), CheckFailure);  // M = N/K
  EXPECT_NO_THROW(SubspaceModel(64, 4, 15));
}

class MultiShape
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, unsigned>> {
};

TEST_P(MultiShape, StateVectorMatchesGeneralizedModel) {
  const auto [n, k, m] = GetParam();
  const auto marked = cluster(n, k, 1, m);
  const oracle::MarkedDatabase db(pow2(n), marked);
  const SubspaceModel model(pow2(n), pow2(k), m);

  const std::uint64_t l1 = 5, l2 = 3;
  auto state = qsim::StateVector::uniform(n);
  auto s = model.uniform_start();
  for (std::uint64_t i = 0; i < l1; ++i) {
    db.apply_phase_oracle(state);
    state.reflect_about_uniform();
    s = model.apply_global(s);
  }
  for (std::uint64_t i = 0; i < l2; ++i) {
    db.apply_phase_oracle(state);
    state.reflect_blocks_about_uniform(k);
    s = model.apply_local(s);
  }
  state.reflect_unmarked_about_their_mean(db.marked());
  s = model.apply_step3(s);

  // Compare class amplitudes: a marked state, an unmarked target-block
  // state, a non-target state.
  const double sqrt_m = std::sqrt(static_cast<double>(m));
  ASSERT_LT(std::abs(state.amplitude(marked[0]) - s.a_t / sqrt_m), 1e-10);
  const qsim::Index in_block_unmarked = (1u << (n - k));  // base + 0, even
  ASSERT_LT(std::abs(state.amplitude(in_block_unmarked) -
                     s.a_b / model.weight_target_rest()),
            1e-10);
  ASSERT_LT(std::abs(state.amplitude(0) -
                     s.a_o / model.weight_non_target()),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MultiShape,
                         ::testing::Values(std::tuple{6u, 1u, 2u},
                                           std::tuple{8u, 2u, 3u},
                                           std::tuple{8u, 2u, 8u},
                                           std::tuple{10u, 3u, 5u},
                                           std::tuple{12u, 2u, 16u}));

TEST(MultiSearch, FindsTheClusterBlock) {
  Rng rng(7);
  const oracle::MarkedDatabase db(1 << 10, cluster(10, 2, 3, 4));
  const auto result = run_partial_search_multi(db, 2, rng);
  EXPECT_GE(result.block_probability, default_min_success(1 << 10));
  EXPECT_TRUE(result.correct);
  EXPECT_EQ(result.queries, result.l1 + result.l2 + 1);
  EXPECT_EQ(db.queries(), result.queries);
}

TEST(MultiSearch, MoreMarksMeanFewerQueries) {
  Rng rng(8);
  std::uint64_t prev = ~std::uint64_t{0};
  for (const std::uint64_t m : {1u, 4u, 16u, 64u}) {
    const oracle::MarkedDatabase db(1 << 12, cluster(12, 2, 2, m));
    const auto result = run_partial_search_multi(db, 2, rng);
    EXPECT_LE(result.queries, prev) << "M=" << m;
    prev = result.queries;
  }
  // The sqrt(M) speedup: M = 64 should cost roughly 1/8 of M = 1.
  const oracle::MarkedDatabase one(1 << 12, cluster(12, 2, 2, 1));
  const auto single = run_partial_search_multi(one, 2, rng);
  EXPECT_LT(prev, single.queries / 4);
}

TEST(MultiSearch, ExplicitCountsHonored) {
  Rng rng(9);
  const oracle::MarkedDatabase db(1 << 8, cluster(8, 1, 1, 2));
  MultiGrkOptions options;
  options.l1 = 4;
  options.l2 = 2;
  const auto result = run_partial_search_multi(db, 1, rng, options);
  EXPECT_EQ(result.queries, 7u);
}

TEST(MultiKernel, UnmarkedMeanReflectionProperties) {
  // Marked amplitudes survive; unmarked follow a' = 2 mean - a; norm kept.
  std::vector<qsim::Amplitude> amps{{0.5, 0.0}, {0.1, 0.0}, {-0.3, 0.0},
                                    {0.2, 0.0}, {0.4, 0.0}, {0.1, 0.0},
                                    {0.6, 0.0}, {0.2, 0.0}};
  const double norm_before = qsim::kernels::norm_squared(amps);
  const std::vector<qsim::Index> marked{1, 6};
  const qsim::Amplitude mean =
      (amps[0] + amps[2] + amps[3] + amps[4] + amps[5] + amps[7]) / 6.0;
  auto expected = amps;
  for (const std::size_t i : {0u, 2u, 3u, 4u, 5u, 7u}) {
    expected[i] = 2.0 * mean - amps[i];
  }
  qsim::kernels::reflect_unmarked_about_their_mean(amps, marked);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    ASSERT_LT(std::abs(amps[i] - expected[i]), 1e-14) << i;
  }
  EXPECT_NEAR(qsim::kernels::norm_squared(amps), norm_before, 1e-12);
}

TEST(MultiKernel, MatchesSingleTargetSpecialCase) {
  std::vector<qsim::Amplitude> a{{0.3, 0.1}, {0.2, 0.0}, {-0.4, 0.2},
                                 {0.1, 0.0}};
  auto b = a;
  qsim::kernels::reflect_non_target_about_their_mean(a, 2);
  const std::vector<qsim::Index> marked{2};
  qsim::kernels::reflect_unmarked_about_their_mean(b, marked);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_LT(std::abs(a[i] - b[i]), 1e-14);
  }
}

TEST(MultiKernel, ValidatesInput) {
  std::vector<qsim::Amplitude> amps(4, {0.5, 0.0});
  const std::vector<qsim::Index> unsorted{2, 1};
  EXPECT_THROW(
      qsim::kernels::reflect_unmarked_about_their_mean(amps, unsorted),
      CheckFailure);
  const std::vector<qsim::Index> too_many{0, 1, 2};
  EXPECT_THROW(
      qsim::kernels::reflect_unmarked_about_their_mean(amps, too_many),
      CheckFailure);
}

}  // namespace
}  // namespace pqs::partial

#include "common/math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pqs {
namespace {

TEST(Pow2, SmallValues) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(1), 2u);
  EXPECT_EQ(pow2(10), 1024u);
  EXPECT_EQ(pow2(63), std::uint64_t{1} << 63);
}

TEST(Pow2, RejectsOverflow) { EXPECT_THROW(pow2(64), CheckFailure); }

TEST(Log2Exact, RoundTripsWithPow2) {
  for (unsigned e = 0; e < 64; ++e) {
    EXPECT_EQ(log2_exact(pow2(e)), e);
  }
}

TEST(Log2Exact, RejectsNonPowers) {
  EXPECT_THROW(log2_exact(0), CheckFailure);
  EXPECT_THROW(log2_exact(3), CheckFailure);
  EXPECT_THROW(log2_exact(12), CheckFailure);
}

TEST(IsPow2, Classification) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_TRUE(is_pow2(std::uint64_t{1} << 40));
}

TEST(ClampedAsin, InRangePassesThrough) {
  EXPECT_DOUBLE_EQ(clamped_asin(0.0), 0.0);
  EXPECT_DOUBLE_EQ(clamped_asin(1.0), kHalfPi);
  EXPECT_DOUBLE_EQ(clamped_asin(-1.0), -kHalfPi);
}

TEST(ClampedAsin, AbsorbsRoundoff) {
  EXPECT_DOUBLE_EQ(clamped_asin(1.0 + 1e-12), kHalfPi);
  EXPECT_DOUBLE_EQ(clamped_asin(-1.0 - 1e-12), -kHalfPi);
}

TEST(ClampedAsin, RejectsRealViolations) {
  EXPECT_THROW(clamped_asin(1.5), CheckFailure);
  EXPECT_THROW(clamped_asin(-2.0), CheckFailure);
}

TEST(ClampedAcos, Basics) {
  EXPECT_DOUBLE_EQ(clamped_acos(1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamped_acos(-1.0 - 1e-13), kPi);
  EXPECT_THROW(clamped_acos(2.0), CheckFailure);
}

TEST(ClampedSqrt, Basics) {
  EXPECT_DOUBLE_EQ(clamped_sqrt(4.0), 2.0);
  EXPECT_DOUBLE_EQ(clamped_sqrt(-1e-12), 0.0);
  EXPECT_THROW(clamped_sqrt(-1.0), CheckFailure);
}

TEST(ApproxRel, ScalesWithMagnitude) {
  EXPECT_TRUE(approx_rel(1e9, 1e9 + 1.0, 1e-8));
  EXPECT_FALSE(approx_rel(1.0, 1.1, 1e-8));
}

TEST(GroverAngle, UniqueTarget) {
  // sin(theta) = 1/sqrt(N).
  EXPECT_NEAR(grover_angle(4), std::asin(0.5), 1e-15);
  EXPECT_NEAR(grover_angle(1 << 20), 1.0 / std::sqrt(1 << 20), 1e-6);
}

TEST(GroverAngle, MultipleTargets) {
  EXPECT_NEAR(grover_angle(100, 25), std::asin(0.5), 1e-15);
}

TEST(GroverSuccess, ClosedFormValues) {
  // N=4: theta = pi/6; one iteration gives sin^2(3 pi/6) = 1 (exact).
  EXPECT_NEAR(grover_success_probability(4, 1), 1.0, 1e-12);
  // Zero iterations: sin^2(theta) = 1/N.
  EXPECT_NEAR(grover_success_probability(1024, 0), 1.0 / 1024.0, 1e-15);
}

TEST(GroverOptimalIterations, MatchesQuarterPiSqrtN) {
  for (unsigned n = 4; n <= 24; n += 2) {
    const std::uint64_t n_items = pow2(n);
    const double expected = kQuarterPi * std::sqrt(static_cast<double>(n_items));
    const auto m = grover_optimal_iterations(n_items);
    EXPECT_NEAR(static_cast<double>(m), expected, 1.0)
        << "n_items = " << n_items;
  }
}

TEST(GroverOptimalIterations, IsActuallyOptimalForSmallN) {
  for (std::uint64_t n_items : {4u, 8u, 16u, 64u, 256u, 1024u}) {
    const auto m_star = grover_optimal_iterations(n_items);
    const double p_star = grover_success_probability(n_items, m_star);
    for (std::uint64_t m = 0; m <= m_star + 3; ++m) {
      EXPECT_LE(grover_success_probability(n_items, m), p_star + 1e-12)
          << "N=" << n_items << " m=" << m;
    }
  }
}

TEST(GroverSuccess, DriftPastOptimumReducesProbability) {
  // The paper's "curious feature": extra iterations move the state away.
  const std::uint64_t n_items = 4096;
  const auto m_star = grover_optimal_iterations(n_items);
  EXPECT_LT(grover_success_probability(n_items, m_star + 8),
            grover_success_probability(n_items, m_star));
}

}  // namespace
}  // namespace pqs

// pqs::Service: the job lifecycle, REAL coalescing (N identical concurrent
// submits -> exactly one driver execution, counted by a test adapter), REAL
// cancellation (a cancelled handle never reports kDone; a running million-
// trial sweep stops in a fraction of its runtime), the bounded priority
// queue, and the result cache.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/timing.h"
#include "service/service.h"

namespace pqs {
namespace {

using namespace std::chrono_literals;

/// Shared observation state of the test drivers, reset per test.
struct DriverState {
  std::atomic<std::uint64_t> executions{0};
  std::atomic<int> running{0};
  std::atomic<bool> gate_open{false};
  std::mutex order_mutex;
  std::vector<std::uint64_t> order;  ///< spec seeds in execution order

  void reset() {
    executions = 0;
    running = 0;
    gate_open = false;
    std::lock_guard lock(order_mutex);
    order.clear();
  }
};

DriverState& state() {
  static DriverState s;
  return s;
}

void record_execution(const RunContext& ctx) {
  state().executions.fetch_add(1);
  std::lock_guard lock(state().order_mutex);
  state().order.push_back(ctx.spec.seed);
}

SearchReport test_report(const RunContext& ctx) {
  SearchReport report;
  report.measured = ctx.marked.front();
  report.correct = true;
  report.queries = 1;
  report.queries_per_trial = 1;
  report.success_probability = 1.0;
  return report;
}

/// "counting": returns instantly, counts executions.
class CountingAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "counting"; }
  std::string_view summary() const override { return "test driver"; }
  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    record_execution(ctx);
    return test_report(ctx);
  }
};

/// "gated": spins at a cancellation checkpoint until the test opens the
/// gate — a controllable long-running job.
class GatedAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "gated"; }
  std::string_view summary() const override { return "test driver"; }
  SearchReport run(RunContext& ctx) const override {
    record_execution(ctx);
    state().running.fetch_add(1);
    while (!state().gate_open.load()) {
      ctx.checkpoint();  // a cancelled job leaves HERE, mid-run
      std::this_thread::sleep_for(1ms);
    }
    state().running.fetch_sub(1);
    return test_report(ctx);
  }
};

Registry test_registry() {
  Registry registry = Registry::with_builtin_algorithms();
  registry.register_algorithm(
      "counting", [] { return std::make_unique<CountingAlgorithm>(); });
  registry.register_algorithm(
      "gated", [] { return std::make_unique<GatedAlgorithm>(); });
  return registry;
}

SearchSpec test_spec(const std::string& algorithm, std::uint64_t seed) {
  SearchSpec spec = SearchSpec::single_target(64, 1, 9);
  spec.algorithm = algorithm;
  spec.seed = seed;
  return spec;
}

/// Poll until `condition` holds (deadlines keep a deadlock from hanging CI).
bool wait_until(const std::function<bool()>& condition,
                std::chrono::milliseconds timeout = 10s) {
  Stopwatch watch;
  while (watch.millis() < static_cast<double>(timeout.count())) {
    if (condition()) {
      return true;
    }
    std::this_thread::sleep_for(1ms);
  }
  return condition();
}

TEST(ServiceCoalescingTest, SixtyFourConcurrentIdenticalSubmitsRunOnce) {
  state().reset();
  Service service({.threads = 4}, test_registry());
  const SearchSpec spec = test_spec("gated", 7);

  constexpr int kCallers = 64;
  std::vector<JobHandle> handles;
  handles.reserve(kCallers);
  std::mutex handles_mutex;
  {
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int c = 0; c < kCallers; ++c) {
      callers.emplace_back([&] {
        JobHandle handle = service.submit(spec);
        std::lock_guard lock(handles_mutex);
        handles.push_back(std::move(handle));
      });
    }
    for (auto& caller : callers) {
      caller.join();
    }
  }
  ASSERT_EQ(handles.size(), kCallers);
  // Everyone is attached to ONE gated execution; let it finish.
  ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));
  state().gate_open = true;

  for (auto& handle : handles) {
    ASSERT_EQ(handle.wait(), JobStatus::kDone);
  }
  // The acceptance criterion: 64 identical reports, ONE driver execution.
  EXPECT_EQ(state().executions.load(), 1u);
  const SearchReport& first = handles.front().report();
  for (auto& handle : handles) {
    const SearchReport& report = handle.report();
    EXPECT_EQ(report.measured, first.measured);
    EXPECT_EQ(report.correct, first.correct);
    EXPECT_EQ(report.queries, first.queries);
    EXPECT_EQ(report.detail, first.detail);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 64u);
  EXPECT_EQ(stats.coalesced_submits + stats.cache_hits, 63u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.done, 1u);
}

TEST(ServiceCancelTest, CancelledRunningJobNeverFlipsToDone) {
  state().reset();
  Service service({.threads = 1}, test_registry());
  JobHandle handle = service.submit(test_spec("gated", 1));
  ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));

  handle.cancel();
  EXPECT_EQ(handle.wait(), JobStatus::kCancelled);  // without opening the gate
  // The terminal state is sticky: even after the gate opens, a cancelled
  // job must never read kDone.
  state().gate_open = true;
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(handle.status(), JobStatus::kCancelled);
  EXPECT_THROW((void)handle.report(), CheckFailure);
  EXPECT_EQ(service.stats().cancelled, 1u);
  EXPECT_EQ(service.stats().done, 0u);
}

TEST(ServiceCancelTest, CancelWhileQueuedNeverExecutes) {
  state().reset();
  Service service({.threads = 1}, test_registry());
  JobHandle blocker = service.submit(test_spec("gated", 1));
  ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));
  JobHandle queued = service.submit(test_spec("counting", 2));

  queued.cancel();
  EXPECT_EQ(queued.status(), JobStatus::kCancelled);  // immediately

  state().gate_open = true;
  EXPECT_EQ(blocker.wait(), JobStatus::kDone);
  EXPECT_EQ(queued.wait(), JobStatus::kCancelled);
  // The counting driver never ran: only the gated seed is in the log.
  std::lock_guard lock(state().order_mutex);
  EXPECT_EQ(state().order, std::vector<std::uint64_t>{1});
}

TEST(ServiceCancelTest, CoalescedCancelDetachesOnlyThatCaller) {
  state().reset();
  Service service({.threads = 1}, test_registry());
  const SearchSpec spec = test_spec("gated", 5);
  JobHandle first = service.submit(spec);
  JobHandle second = service.submit(spec);
  EXPECT_EQ(service.stats().coalesced_submits, 1u);
  ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));

  first.cancel();
  EXPECT_EQ(first.status(), JobStatus::kCancelled);
  // The other caller is still attached, so the execution keeps going...
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(second.status(), JobStatus::kRunning);
  // ...and completes for them.
  state().gate_open = true;
  EXPECT_EQ(second.wait(), JobStatus::kDone);
  EXPECT_EQ(first.status(), JobStatus::kCancelled);
  EXPECT_EQ(state().executions.load(), 1u);
}

TEST(ServiceCancelTest, ResubmitAfterFullCancelGetsAFreshExecution) {
  state().reset();
  Service service({.threads = 1}, test_registry());
  const SearchSpec spec = test_spec("gated", 5);
  JobHandle doomed = service.submit(spec);
  ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));
  doomed.cancel();  // last attachment out: this execution is doomed

  // An innocent caller submitting the same spec before the doomed job
  // settles must NOT be attached to it — they never cancelled anything
  // and expect a result.
  JobHandle fresh = service.submit(spec);
  state().gate_open = true;
  EXPECT_EQ(fresh.wait(), JobStatus::kDone);
  EXPECT_EQ(doomed.wait(), JobStatus::kCancelled);
  EXPECT_EQ(state().executions.load(), 2u);
}

TEST(ServiceQueueTest, PriorityRunsFirstFifoWithin) {
  state().reset();
  Service service({.threads = 1}, test_registry());
  JobHandle blocker = service.submit(test_spec("gated", 100));
  ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));

  JobHandle low_a = service.submit(test_spec("counting", 1), /*priority=*/0);
  JobHandle low_b = service.submit(test_spec("counting", 2), /*priority=*/0);
  JobHandle high = service.submit(test_spec("counting", 3), /*priority=*/5);
  EXPECT_EQ(service.queue_depth(), 3u);

  state().gate_open = true;
  EXPECT_EQ(blocker.wait(), JobStatus::kDone);
  EXPECT_EQ(low_a.wait(), JobStatus::kDone);
  EXPECT_EQ(low_b.wait(), JobStatus::kDone);
  EXPECT_EQ(high.wait(), JobStatus::kDone);

  std::lock_guard lock(state().order_mutex);
  EXPECT_EQ(state().order, (std::vector<std::uint64_t>{100, 3, 1, 2}));
}

TEST(ServiceQueueTest, CoalescedSubmitPromotesTheQueuedJobsPriority) {
  state().reset();
  Service service({.threads = 1}, test_registry());
  JobHandle blocker = service.submit(test_spec("gated", 100));
  ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));

  JobHandle lazy = service.submit(test_spec("counting", 1), /*priority=*/0);
  JobHandle other = service.submit(test_spec("counting", 2), /*priority=*/5);
  // An urgent caller coalesces onto the lazy job: it must overtake `other`.
  JobHandle urgent = service.submit(test_spec("counting", 1), /*priority=*/9);

  state().gate_open = true;
  EXPECT_EQ(blocker.wait(), JobStatus::kDone);
  EXPECT_EQ(lazy.wait(), JobStatus::kDone);
  EXPECT_EQ(other.wait(), JobStatus::kDone);
  EXPECT_EQ(urgent.wait(), JobStatus::kDone);

  std::lock_guard lock(state().order_mutex);
  EXPECT_EQ(state().order, (std::vector<std::uint64_t>{100, 1, 2}));
}

TEST(ServiceQueueTest, BoundedQueueRejectsOverload) {
  state().reset();
  Service service({.threads = 1, .queue_capacity = 2}, test_registry());
  JobHandle blocker = service.submit(test_spec("gated", 100));
  ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));

  JobHandle a = service.submit(test_spec("counting", 1));
  JobHandle b = service.submit(test_spec("counting", 2));
  EXPECT_THROW((void)service.submit(test_spec("counting", 3)), CheckFailure);

  state().gate_open = true;
  EXPECT_EQ(blocker.wait(), JobStatus::kDone);
  EXPECT_EQ(a.wait(), JobStatus::kDone);
  EXPECT_EQ(b.wait(), JobStatus::kDone);
}

TEST(ServiceQueueTest, CancellingQueuedJobsFreesTheirQueueSlots) {
  state().reset();
  Service service({.threads = 1, .queue_capacity = 2}, test_registry());
  JobHandle blocker = service.submit(test_spec("gated", 100));
  ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));
  JobHandle a = service.submit(test_spec("counting", 1));
  JobHandle b = service.submit(test_spec("counting", 2));

  // Full queue; cancelling a waiter must shed its load so a new submit fits.
  a.cancel();
  JobHandle c = service.submit(test_spec("counting", 3));

  state().gate_open = true;
  EXPECT_EQ(blocker.wait(), JobStatus::kDone);
  EXPECT_EQ(a.wait(), JobStatus::kCancelled);
  EXPECT_EQ(b.wait(), JobStatus::kDone);
  EXPECT_EQ(c.wait(), JobStatus::kDone);
  std::lock_guard lock(state().order_mutex);
  EXPECT_EQ(state().order, (std::vector<std::uint64_t>{100, 2, 3}));
}

TEST(ServiceCacheTest, CompletedSpecIsServedFromTheResultCache) {
  state().reset();
  Service service({.threads = 2}, test_registry());
  const SearchSpec spec = test_spec("counting", 11);

  JobHandle first = service.submit(spec);
  ASSERT_EQ(first.wait(), JobStatus::kDone);
  JobHandle repeat = service.submit(spec);
  EXPECT_EQ(repeat.status(), JobStatus::kDone);  // no queue round trip
  EXPECT_EQ(repeat.report().measured, first.report().measured);

  EXPECT_EQ(state().executions.load(), 1u);
  EXPECT_EQ(service.stats().cache_hits, 1u);
  EXPECT_EQ(repeat.progress(), 1.0);
}

TEST(ServiceTimingTest, QueueDelayIsReportedSeparately) {
  state().reset();
  Service service({.threads = 1}, test_registry());
  JobHandle blocker = service.submit(test_spec("gated", 100));
  ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));
  JobHandle waiting = service.submit(test_spec("counting", 1));
  std::this_thread::sleep_for(20ms);  // guarantee measurable queueing
  state().gate_open = true;

  ASSERT_EQ(waiting.wait(), JobStatus::kDone);
  // The satellite's point: queueing delay is visible, not folded into the
  // execution number.
  EXPECT_GE(waiting.report().queue_ns, 10'000'000u);  // >= 10 ms queued
  EXPECT_LT(blocker.report().queue_ns, waiting.report().queue_ns);
}

TEST(ServiceRealDriverTest, MillionTrialNoisySweepCancelsQuickly) {
  Service service({.threads = 1});  // built-in registry, real drivers
  SearchSpec spec = SearchSpec::single_target(1u << 16, 4, 12345);
  spec.algorithm = "noisy";
  spec.backend = qsim::BackendKind::kSymmetry;
  spec.noise.kind = qsim::NoiseKind::kDepolarizing;
  spec.noise.probability = 1e-4;
  spec.shots = 4'000'000;  // tens of core-seconds if run to completion
  spec.l1 = 201;           // pin the schedule: no planning in the way
  spec.l2 = 100;

  Stopwatch watch;
  JobHandle handle = service.submit(spec);
  ASSERT_TRUE(wait_until(
      [&] { return handle.status() == JobStatus::kRunning; }));
  std::this_thread::sleep_for(30ms);  // let trials actually start
  handle.cancel();
  EXPECT_EQ(handle.wait(), JobStatus::kCancelled);
  // "Well under the job's full runtime": seconds, not minutes.
  EXPECT_LT(watch.seconds(), 30.0);
  const double progress = handle.progress();
  EXPECT_GE(progress, 0.0);
  EXPECT_LT(progress, 1.0);
}

TEST(ServiceEngineTest, EngineRunThrowsCancelledErrorDirectly) {
  const Engine engine;
  qsim::RunControl control;
  control.cancel();
  SearchSpec spec = SearchSpec::single_target(1u << 10, 1, 3);
  spec.algorithm = "grover";
  EXPECT_THROW((void)engine.run(spec, &control), qsim::CancelledError);
}

TEST(ServiceFailureTest, AdapterErrorsSurfaceAsFailedWithMessage) {
  Service service({.threads = 1});
  // Passes spec validation but violates the adapter's K >= 3 requirement.
  SearchSpec spec = SearchSpec::single_target(64, 2, 3);
  spec.algorithm = "twelve";
  JobHandle handle = service.submit(spec);
  EXPECT_EQ(handle.wait(), JobStatus::kFailed);
  EXPECT_FALSE(handle.error().empty());
  EXPECT_THROW((void)handle.report(), CheckFailure);
  EXPECT_EQ(service.stats().failed, 1u);
}

TEST(ServiceShutdownTest, DestructorCancelsOutstandingJobs) {
  state().reset();
  std::vector<JobHandle> handles;
  {
    Service service({.threads = 1}, test_registry());
    handles.push_back(service.submit(test_spec("gated", 1)));
    ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));
    handles.push_back(service.submit(test_spec("counting", 2)));
    // ~Service: cancels the running gate and the queued counting job.
  }
  EXPECT_EQ(handles[0].status(), JobStatus::kCancelled);
  EXPECT_EQ(handles[1].status(), JobStatus::kCancelled);
}

}  // namespace
}  // namespace pqs

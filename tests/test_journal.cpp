// The durability layer: journal round-trips (randomized specs byte-survive
// the accepted-record line), torn-tail recovery at EVERY truncation offset,
// the Service wiring (fresh executions journal once; coalesced submits,
// cache hits, and shutdown-interrupted jobs don't write what they mustn't),
// replay semantics (equal keys execute once, a full queue is waited out, a
// stale spec is skipped with a warning), the double-crash rotation merge,
// the two end-of-input shapes with journalling on (stdin drain completes
// everything; a vanished TCP peer's jobs are cancelled AND marked so a
// restart won't resurrect them), and the headline: SIGKILL the real
// pqs_serve mid-batch, restart it, and watch exactly the unfinished jobs —
// no more, no fewer — run again.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/serialize.h"
#include "common/check.h"
#include "common/json.h"
#include "common/random.h"
#include "common/timing.h"
#include "net/server.h"
#include "net/session.h"
#include "net/socket.h"
#include "service/journal.h"
#include "service/service.h"

namespace pqs {
namespace {

using namespace std::chrono_literals;

// ---- shared scaffolding ----------------------------------------------------

struct TempDir {
  std::string path;
  TempDir() {
    std::string templ =
        (std::filesystem::temp_directory_path() / "pqs_journal_XXXXXX")
            .string();
    PQS_CHECK(::mkdtemp(templ.data()) != nullptr);
    path = templ;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string wal() const { return path + "/journal.wal"; }
};

std::string spec_dump(const SearchSpec& spec) {
  return api::to_json(spec).dump();
}

bool wait_until(const std::function<bool()>& condition,
                std::chrono::milliseconds timeout = 10s) {
  Stopwatch watch;
  while (watch.millis() < static_cast<double>(timeout.count())) {
    if (condition()) {
      return true;
    }
    std::this_thread::sleep_for(1ms);
  }
  return condition();
}

// ---- test drivers ----------------------------------------------------------

struct DriverState {
  std::atomic<std::uint64_t> executions{0};
  std::atomic<int> running{0};
  std::atomic<bool> gate_open{false};

  void reset() {
    executions = 0;
    running = 0;
    gate_open = false;
  }
};

DriverState& state() {
  static DriverState s;
  return s;
}

SearchReport driver_report(const RunContext& ctx) {
  SearchReport report;
  report.measured = ctx.marked.front();
  report.correct = true;
  report.queries = 1;
  report.queries_per_trial = 1;
  report.success_probability = 1.0;
  return report;
}

/// Returns instantly, counts executions.
class CountingAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "counting"; }
  std::string_view summary() const override { return "test driver"; }
  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    state().executions.fetch_add(1);
    return driver_report(ctx);
  }
};

/// Sleeps long enough that a 1-worker service's bounded queue fills during
/// replay — the back-pressure path's controllable load.
class SleepyAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "sleepy"; }
  std::string_view summary() const override { return "test driver"; }
  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    state().executions.fetch_add(1);
    std::this_thread::sleep_for(10ms);
    return driver_report(ctx);
  }
};

/// Spins at a cancellation checkpoint until the gate opens.
class GatedAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "gated"; }
  std::string_view summary() const override { return "test driver"; }
  SearchReport run(RunContext& ctx) const override {
    state().executions.fetch_add(1);
    state().running.fetch_add(1);
    struct Guard {
      ~Guard() { state().running.fetch_sub(1); }
    } guard;
    while (!state().gate_open.load()) {
      ctx.checkpoint();  // a cancelled job unwinds from HERE
      std::this_thread::sleep_for(1ms);
    }
    return driver_report(ctx);
  }
};

Registry test_registry() {
  Registry registry = Registry::with_builtin_algorithms();
  registry.register_algorithm(
      "counting", [] { return std::make_unique<CountingAlgorithm>(); });
  registry.register_algorithm(
      "sleepy", [] { return std::make_unique<SleepyAlgorithm>(); });
  registry.register_algorithm(
      "gated", [] { return std::make_unique<GatedAlgorithm>(); });
  return registry;
}

SearchSpec test_spec(const std::string& algorithm, std::uint64_t seed) {
  SearchSpec spec = SearchSpec::single_target(64, 1, 9);
  spec.algorithm = algorithm;
  spec.seed = seed;
  return spec;
}

// ---- randomized journal-line round trip ------------------------------------

SearchSpec random_spec(Rng& rng) {
  static const std::vector<std::string> kAlgorithms{
      "auto", "grover", "grk", "multi", "certainty", "noisy", "classical"};
  SearchSpec spec;
  spec.algorithm = kAlgorithms[rng.uniform_below(kAlgorithms.size())];
  const unsigned n = 2 + static_cast<unsigned>(rng.uniform_below(20));
  spec.n_items = std::uint64_t{1} << n;
  spec.n_blocks = std::uint64_t{1} << rng.uniform_below(n / 2 + 1);
  const std::size_t n_marked = 1 + rng.uniform_below(4);
  for (std::size_t i = 0; i < n_marked; ++i) {
    spec.marked.push_back(rng.uniform_below(spec.n_items));
  }
  spec.backend = static_cast<qsim::BackendKind>(rng.uniform_below(3));
  spec.noise.kind = static_cast<qsim::NoiseKind>(rng.uniform_below(4));
  spec.noise.probability = static_cast<double>(rng.uniform_below(1000)) / 1e4;
  spec.seed = rng.next();  // any uint64, including > 2^53
  spec.min_success = static_cast<double>(rng.uniform_below(1000)) / 1e3;
  spec.shots = 1 + rng.uniform_below(1u << 16);
  return spec;
}

TEST(JournalRoundTripTest, RandomSpecsAndPrioritiesSurviveRecovery) {
  TempDir dir;
  Rng rng(20260808);
  std::vector<SearchSpec> specs;
  std::vector<int> priorities;
  {
    Journal journal(dir.wal(), JournalSync::kNone);
    for (int i = 0; i < 200; ++i) {
      specs.push_back(random_spec(rng));
      // Below-default urgency included: negative priorities travel as
      // doubles on the wire and must come back as the same int.
      priorities.push_back(static_cast<int>(rng.uniform_below(7)) - 3);
      const std::uint64_t id =
          journal.append_accepted(specs.back(), priorities.back());
      EXPECT_EQ(id, static_cast<std::uint64_t>(i + 1));
    }
  }
  const RecoveredJournal recovered = Journal::recover_file(dir.wal());
  ASSERT_EQ(recovered.accepted, 200u);
  ASSERT_EQ(recovered.pending.size(), 200u);
  EXPECT_TRUE(recovered.warnings.empty());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(recovered.pending[i].id, i + 1);
    EXPECT_EQ(recovered.pending[i].priority, priorities[i]);
    // Byte equality of the canonical dump — the exact property replay and
    // coalescing keys stand on.
    EXPECT_EQ(spec_dump(recovered.pending[i].spec), spec_dump(specs[i]));
  }
}

// ---- torn-tail recovery ----------------------------------------------------

TEST(JournalRecoveryTest, TornFinalLineSkippedAtEveryTruncationOffset) {
  TempDir dir;
  {
    Journal journal(dir.wal(), JournalSync::kNone);
    journal.append_accepted(test_spec("grover", 1), 0);
    journal.append_accepted(test_spec("grover", 2), 2);
  }
  std::ifstream in(dir.wal(), std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  const std::string text = bytes.str();
  const std::size_t first_len = text.find('\n');
  ASSERT_NE(first_len, std::string::npos);

  ASSERT_EQ(Journal::recover_text(text).accepted, 2u);
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    const RecoveredJournal r = Journal::recover_text(
        std::string_view(text).substr(0, cut));  // must never throw
    if (cut == 0) {
      EXPECT_EQ(r.accepted, 0u);
      EXPECT_TRUE(r.warnings.empty());
    } else if (cut < first_len) {
      // Torn inside the FIRST record: nothing recoverable, one warning.
      EXPECT_EQ(r.accepted, 0u) << "cut=" << cut;
      ASSERT_EQ(r.warnings.size(), 1u) << "cut=" << cut;
      EXPECT_NE(r.warnings[0].find("torn final line"), std::string::npos);
    } else if (cut <= first_len + 1) {
      // Exactly the first record (with or without its newline).
      EXPECT_EQ(r.accepted, 1u) << "cut=" << cut;
      EXPECT_TRUE(r.warnings.empty()) << "cut=" << cut;
    } else if (cut < text.size() - 1) {
      // Torn inside the SECOND record: the first survives intact, the
      // partial tail becomes one warning — never an exception.
      EXPECT_EQ(r.accepted, 1u) << "cut=" << cut;
      EXPECT_EQ(r.pending.size(), 1u) << "cut=" << cut;
      ASSERT_EQ(r.warnings.size(), 1u) << "cut=" << cut;
      EXPECT_NE(r.warnings[0].find("torn final line"), std::string::npos);
    } else {
      // Only the final newline missing: the second record is complete.
      EXPECT_EQ(r.accepted, 2u) << "cut=" << cut;
      EXPECT_TRUE(r.warnings.empty()) << "cut=" << cut;
    }
  }
}

TEST(JournalRecoveryTest, CompletionMarkerSettlesItsRecord) {
  TempDir dir;
  SearchReport report;
  report.algorithm = "grover";
  report.measured = 9;
  report.correct = true;
  report.queries = 4;
  report.queries_per_trial = 4;
  report.success_probability = 0.875;
  report.trials = 8;
  {
    Journal journal(dir.wal(), JournalSync::kNone);
    const std::uint64_t a = journal.append_accepted(test_spec("grover", 1), 0);
    const std::uint64_t b = journal.append_accepted(test_spec("grover", 2), 0);
    journal.append_completed(a, JobStatus::kDone, &report);
    journal.append_completed(b, JobStatus::kCancelled, nullptr);
  }
  const RecoveredJournal recovered = Journal::recover_file(dir.wal());
  EXPECT_EQ(recovered.accepted, 2u);
  EXPECT_EQ(recovered.completed, 2u);
  EXPECT_TRUE(recovered.pending.empty());
  ASSERT_EQ(recovered.completions.size(), 2u);
  EXPECT_EQ(recovered.completions[0].status, JobStatus::kDone);
  ASSERT_TRUE(recovered.completions[0].has_report);
  EXPECT_EQ(api::to_json(recovered.completions[0].report).dump(),
            api::to_json(report).dump());
  EXPECT_EQ(recovered.completions[1].status, JobStatus::kCancelled);
  EXPECT_FALSE(recovered.completions[1].has_report);
}

TEST(JournalRecoveryTest, ForeignBytesBecomeWarningsNeverExceptions) {
  const RecoveredJournal r = Journal::recover_text(
      "not json at all\n"
      "{\"id\":1,\"journal\":\"accepted\",\"priority\":0,"
      "\"spec\":{\"algorithm\":\"grover\",\"marked\":[9],\"n_blocks\":1,"
      "\"n_items\":64,\"seed\":1,\"shots\":9},\"t_ns\":5}\n"
      "{\"id\":7,\"journal\":\"frobnicated\"}\n"
      "{\"journal\":\"accepted\"}\n"
      "\x01\x02\x03\n");
  EXPECT_EQ(r.accepted, 1u);
  EXPECT_EQ(r.pending.size(), 1u);
  EXPECT_EQ(r.warnings.size(), 4u);
}

TEST(JournalRecoveryTest, RecordIdsContinueAcrossReopen) {
  TempDir dir;
  {
    Journal journal(dir.wal(), JournalSync::kNone);
    EXPECT_EQ(journal.append_accepted(test_spec("grover", 1), 0), 1u);
  }
  {
    // Same file, new process: ids must not restart at 1, or completion
    // markers would pair with the wrong accepted record.
    Journal journal(dir.wal(), JournalSync::kNone);
    EXPECT_EQ(journal.append_accepted(test_spec("grover", 2), 0), 2u);
  }
  EXPECT_EQ(Journal::recover_file(dir.wal()).max_id, 2u);
}

// ---- Service wiring --------------------------------------------------------

TEST(ServiceJournalTest, LifecycleWritesAcceptedThenDoneMarker) {
  state().reset();
  TempDir dir;
  auto journal = std::make_shared<Journal>(dir.wal(), JournalSync::kNone);
  std::string report_dump;
  {
    Service service({.threads = 1, .journal = journal}, test_registry());
    JobHandle handle = service.submit(test_spec("counting", 11));
    ASSERT_EQ(handle.wait(), JobStatus::kDone);
    report_dump = api::to_json(handle.report()).dump();
  }
  const RecoveredJournal recovered = Journal::recover_file(dir.wal());
  EXPECT_EQ(recovered.accepted, 1u);
  ASSERT_EQ(recovered.completed, 1u);
  EXPECT_TRUE(recovered.pending.empty());
  EXPECT_EQ(recovered.completions[0].status, JobStatus::kDone);
  ASSERT_TRUE(recovered.completions[0].has_report);
  // The marker embeds the exact report the handle saw.
  EXPECT_EQ(api::to_json(recovered.completions[0].report).dump(), report_dump);
}

TEST(ServiceJournalTest, CoalescedSubmitsAndCacheHitsJournalOnce) {
  state().reset();
  TempDir dir;
  auto journal = std::make_shared<Journal>(dir.wal(), JournalSync::kNone);
  {
    Service service({.threads = 1, .journal = journal}, test_registry());
    const SearchSpec spec = test_spec("gated", 7);
    JobHandle first = service.submit(spec);
    ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));
    JobHandle attached = service.submit(spec);  // coalesces onto `first`
    state().gate_open = true;
    ASSERT_EQ(first.wait(), JobStatus::kDone);
    ASSERT_EQ(attached.wait(), JobStatus::kDone);
    JobHandle cached = service.submit(spec);  // served from the result LRU
    ASSERT_EQ(cached.wait(), JobStatus::kDone);
    EXPECT_EQ(service.stats().executed, 1u);
  }
  // One execution -> exactly one accepted record and one marker; the
  // attached and cached callers ride it.
  const RecoveredJournal recovered = Journal::recover_file(dir.wal());
  EXPECT_EQ(recovered.accepted, 1u);
  EXPECT_EQ(recovered.completed, 1u);
  EXPECT_TRUE(recovered.pending.empty());
}

TEST(ServiceJournalTest, ShutdownSuppressesMarkersSoInterruptedJobsReplay) {
  state().reset();
  TempDir dir;
  auto journal = std::make_shared<Journal>(dir.wal(), JournalSync::kNone);
  {
    Service service({.threads = 1, .journal = journal}, test_registry());
    service.submit(test_spec("gated", 5));
    service.submit(test_spec("counting", 6));  // still queued at teardown
    ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));
    // ~Service cancels both WITHOUT opening the gate — the shutdown path.
  }
  // Neither job may carry a marker: a restart must see both as pending
  // (shutdown-interrupted work is exactly what replay exists for).
  const RecoveredJournal recovered = Journal::recover_file(dir.wal());
  EXPECT_EQ(recovered.accepted, 2u);
  EXPECT_EQ(recovered.completed, 0u);
  EXPECT_EQ(recovered.pending.size(), 2u);
}

TEST(ServiceJournalTest, ExplicitCancelWritesACancelledMarker) {
  state().reset();
  TempDir dir;
  auto journal = std::make_shared<Journal>(dir.wal(), JournalSync::kNone);
  {
    Service service({.threads = 1, .journal = journal}, test_registry());
    JobHandle handle = service.submit(test_spec("gated", 8));
    ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));
    handle.cancel();
    EXPECT_EQ(handle.wait(), JobStatus::kCancelled);
    // A LIVE cancel settles the record (unlike the shutdown path): poll the
    // file, the worker writes the marker as the CancelledError unwinds.
    ASSERT_TRUE(wait_until([&] {
      return Journal::recover_file(dir.wal()).completed == 1;
    }));
  }
  const RecoveredJournal recovered = Journal::recover_file(dir.wal());
  EXPECT_EQ(recovered.accepted, 1u);
  ASSERT_EQ(recovered.completions.size(), 1u);
  EXPECT_EQ(recovered.completions[0].status, JobStatus::kCancelled);
  EXPECT_TRUE(recovered.pending.empty());
}

// ---- replay ----------------------------------------------------------------

TEST(ReplayTest, EqualKeysExecuteOnceAndLandOneFreshRecord) {
  state().reset();
  TempDir dir;
  {
    Journal journal(dir.wal(), JournalSync::kNone);
    journal.append_accepted(test_spec("counting", 21), 0);
    journal.append_accepted(test_spec("counting", 21), 0);  // same key
    journal.append_accepted(test_spec("counting", 22), 0);
  }
  Journal::Opened opened = Journal::recover_and_open(dir.wal(),
                                                     JournalSync::kNone);
  ASSERT_EQ(opened.recovered.pending.size(), 3u);
  {
    Service service({.threads = 2, .journal = opened.journal},
                    test_registry());
    const service::ReplayOutcome outcome =
        service::replay_pending(service, opened.recovered.pending);
    EXPECT_EQ(outcome.resubmitted, 3u);
    EXPECT_EQ(outcome.skipped, 0u);
    for (const JobHandle& handle : outcome.handles) {
      EXPECT_EQ(handle.wait(), JobStatus::kDone);
    }
    opened.journal->sync();
    Journal::finish_recovery(dir.wal());
  }
  // The duplicate coalesced (or hit the result cache): two unique keys,
  // two executions, two fresh accepted records in the new journal.
  EXPECT_EQ(state().executions.load(), 2u);
  EXPECT_EQ(Journal::recover_file(dir.wal()).accepted, 2u);
  EXPECT_FALSE(std::filesystem::exists(Journal::recovering_path(dir.wal())));
}

TEST(ReplayTest, FullQueueIsWaitedOutNeverDropped) {
  state().reset();
  TempDir dir;
  {
    Journal journal(dir.wal(), JournalSync::kNone);
    for (std::uint64_t seed = 31; seed < 37; ++seed) {
      journal.append_accepted(test_spec("sleepy", seed), 0);
    }
  }
  const RecoveredJournal recovered = Journal::recover_file(dir.wal());
  ASSERT_EQ(recovered.pending.size(), 6u);
  // One worker, ONE queue slot: replaying six records overflows the bounded
  // queue repeatedly, and replay must absorb that as back-pressure.
  Service service({.threads = 1, .queue_capacity = 1}, test_registry());
  const service::ReplayOutcome outcome =
      service::replay_pending(service, recovered.pending);
  EXPECT_EQ(outcome.resubmitted, 6u);
  EXPECT_EQ(outcome.skipped, 0u);
  for (const JobHandle& handle : outcome.handles) {
    EXPECT_EQ(handle.wait(), JobStatus::kDone);
  }
  EXPECT_EQ(state().executions.load(), 6u);
}

TEST(ReplayTest, StaleSpecIsSkippedWithAWarning) {
  state().reset();
  TempDir dir;
  {
    Journal journal(dir.wal(), JournalSync::kNone);
    // Parses fine (the knobs validate) but can no longer SUBMIT: address
    // 100 in a 64-item space fails marked-set materialization — the shape
    // of a record written by an older, laxer build.
    SearchSpec stale = test_spec("counting", 41);
    stale.marked = {100};
    journal.append_accepted(stale, 0);
    journal.append_accepted(test_spec("counting", 42), 0);
  }
  const RecoveredJournal recovered = Journal::recover_file(dir.wal());
  ASSERT_EQ(recovered.pending.size(), 2u);
  Service service({.threads = 1}, test_registry());
  const service::ReplayOutcome outcome =
      service::replay_pending(service, recovered.pending);
  EXPECT_EQ(outcome.skipped, 1u);
  EXPECT_EQ(outcome.resubmitted, 1u);
  ASSERT_EQ(outcome.warnings.size(), 1u);
  EXPECT_NE(outcome.warnings[0].find("no longer submits"), std::string::npos);
  ASSERT_EQ(outcome.handles.size(), 1u);
  EXPECT_EQ(outcome.handles[0].wait(), JobStatus::kDone);
}

TEST(ReplayTest, DoubleCrashMergesParkedHistoryOldestFirst) {
  TempDir dir;
  const SearchSpec spec_a = test_spec("counting", 51);
  const SearchSpec spec_b = test_spec("counting", 52);
  {
    Journal journal(dir.wal(), JournalSync::kNone);
    journal.append_accepted(spec_a, 0);
  }
  // First recovery: history rotates into .recovering, a fresh journal
  // opens, and (simulating replay) one resubmission lands... then the
  // recovering process ITSELF dies before finish_recovery.
  {
    Journal::Opened first = Journal::recover_and_open(dir.wal(),
                                                      JournalSync::kNone);
    ASSERT_EQ(first.recovered.pending.size(), 1u);
    EXPECT_TRUE(
        std::filesystem::exists(Journal::recovering_path(dir.wal())));
    EXPECT_EQ(Journal::recover_file(dir.wal()).accepted, 0u);  // fresh
    first.journal->append_accepted(spec_b, 0);
    // no finish_recovery: the double-crash shape
  }
  // Second recovery must merge BOTH files — parked history first — and
  // rotate everything, losing no byte until the replay is durable.
  Journal::Opened second = Journal::recover_and_open(dir.wal(),
                                                     JournalSync::kNone);
  ASSERT_EQ(second.recovered.pending.size(), 2u);
  EXPECT_EQ(spec_dump(second.recovered.pending[0].spec), spec_dump(spec_a));
  EXPECT_EQ(spec_dump(second.recovered.pending[1].spec), spec_dump(spec_b));
  EXPECT_EQ(
      Journal::recover_file(Journal::recovering_path(dir.wal())).accepted,
      2u);
  EXPECT_EQ(Journal::recover_file(dir.wal()).accepted, 0u);
  Journal::finish_recovery(dir.wal());
  EXPECT_FALSE(std::filesystem::exists(Journal::recovering_path(dir.wal())));
  Journal::finish_recovery(dir.wal());  // idempotent
}

TEST(ReplayTest, DoubleCrashIdsNeverCollideAcrossGenerations) {
  TempDir dir;
  const SearchSpec spec_b = test_spec("counting", 71);
  const SearchSpec spec_c = test_spec("counting", 72);
  const SearchSpec spec_d = test_spec("counting", 73);
  {
    // Generation 1: ids 1..4; id 1 settles, so pending ids are {2, 3, 4}.
    Journal journal(dir.wal(), JournalSync::kNone);
    journal.append_accepted(test_spec("counting", 70), 0);
    journal.append_accepted(spec_b, 0);
    journal.append_accepted(spec_c, 0);
    journal.append_accepted(spec_d, 0);
    journal.append_completed(1, JobStatus::kCancelled, nullptr);
  }
  {
    // First recovery: generation 2's ids must continue AFTER the parked
    // generation's — restarting at 1 would collide with gen-1's pending
    // ids once a second crash concatenates the two files.
    Journal::Opened first = Journal::recover_and_open(dir.wal(),
                                                      JournalSync::kNone);
    ASSERT_EQ(first.recovered.pending.size(), 3u);
    ASSERT_EQ(first.recovered.max_id, 4u);
    EXPECT_EQ(first.journal->append_accepted(spec_b, 0), 5u);
    EXPECT_EQ(first.journal->append_accepted(spec_c, 0), 6u);
    const std::uint64_t replayed_d = first.journal->append_accepted(spec_d, 0);
    EXPECT_EQ(replayed_d, 7u);
    // The replayed spec_d settles out of order (a later job finishing
    // first)... then this recovery dies before finish_recovery, with the
    // replayed spec_b / spec_c still unfinished.
    first.journal->append_completed(replayed_d, JobStatus::kCancelled,
                                    nullptr);
  }
  // Second recovery parses both generations in one id-space. With unique
  // ids, spec_d's gen-2 completion settles only its own record; before the
  // id-continuation fix it carried id 3 and erased gen-1's still-pending
  // record 3 (spec_c) — an acked, never-run job silently vanished.
  Journal::Opened second = Journal::recover_and_open(dir.wal(),
                                                     JournalSync::kNone);
  EXPECT_EQ(second.recovered.max_id, 7u);
  // Pending: gen-1 {2:b, 3:c, 4:d} + gen-2 {5:b, 6:c} (7 settled). The
  // duplicates coalesce at resubmission — the documented at-least-once
  // degradation. What matters: NOTHING unfinished went missing.
  ASSERT_EQ(second.recovered.pending.size(), 5u);
  std::set<std::uint64_t> ids;
  std::size_t c_records = 0;
  std::size_t d_records = 0;
  for (const JournalRecord& record : second.recovered.pending) {
    ids.insert(record.id);
    c_records += spec_dump(record.spec) == spec_dump(spec_c) ? 1 : 0;
    d_records += spec_dump(record.spec) == spec_dump(spec_d) ? 1 : 0;
  }
  EXPECT_EQ(ids.size(), 5u);  // all pending ids distinct across generations
  EXPECT_EQ(c_records, 2u);   // spec_c pending in BOTH generations
  EXPECT_EQ(d_records, 1u);   // gen-1's spec_d still pending; gen-2's done
  Journal::finish_recovery(dir.wal());
}

// ---- end-of-input shapes with journalling on -------------------------------

std::string submit_line(const std::string& algorithm, const std::string& id,
                        std::uint64_t seed) {
  Json spec = Json::make_object();
  spec["algorithm"] = algorithm;
  spec["n_items"] = std::uint64_t{64};
  spec["n_blocks"] = std::uint64_t{1};
  Json marked = Json::make_array();
  marked.push_back(std::uint64_t{9});
  spec["marked"] = std::move(marked);
  spec["seed"] = seed;
  Json request = Json::make_object();
  request["op"] = std::string("submit");
  request["id"] = id;
  request["spec"] = std::move(spec);
  return request.dump();
}

TEST(SessionJournalTest, StdinDrainSettlesEveryJournalledJob) {
  state().reset();
  TempDir dir;
  auto journal = std::make_shared<Journal>(dir.wal(), JournalSync::kNone);
  std::vector<std::string> events;
  std::mutex events_mutex;
  {
    Service service({.threads = 2, .journal = journal}, test_registry());
    net::Session session(service, [&](const std::string& line) {
      std::lock_guard lock(events_mutex);
      events.push_back(line);
      return true;
    });
    session.handle_line(submit_line("counting", "a", 61));
    session.handle_line(submit_line("counting", "b", 62));
    session.drain();  // stdin EOF: results still owed to the reader
  }
  EXPECT_EQ(events.size(), 4u);  // 2 acks + 2 results
  const RecoveredJournal recovered = Journal::recover_file(dir.wal());
  EXPECT_EQ(recovered.accepted, 2u);
  EXPECT_EQ(recovered.completed, 2u);
  EXPECT_TRUE(recovered.pending.empty());
  for (const CompletedJournalRecord& marker : recovered.completions) {
    EXPECT_EQ(marker.status, JobStatus::kDone);
  }
}

TEST(SessionJournalTest, TcpDisconnectAbortMarksJobsSoTheyNeverReplay) {
  state().reset();
  TempDir dir;
  auto journal = std::make_shared<Journal>(dir.wal(), JournalSync::kNone);
  {
    Service service({.threads = 1, .journal = journal}, test_registry());
    net::NetServer server(service, {.listen = {"127.0.0.1", 0}});
    server.start();
    {
      net::Socket client(net::connect_with_retry(
          {"127.0.0.1", server.port()}, 5000ms));
      net::LineReader reader(client);
      ASSERT_TRUE(
          client.write_all(submit_line("gated", "doomed", 71) + "\n"));
      std::string ack;
      ASSERT_TRUE(reader.next_line(ack));
      ASSERT_EQ(Json::parse(ack).at("event").as_string(), "accepted");
      ASSERT_TRUE(wait_until([] { return state().running.load() == 1; }));
      // The peer vanishes here — socket closes, gate still shut.
    }
    // The abort path must CANCEL the execution (shed the load) and write a
    // cancelled marker: work nobody will read must not replay on restart.
    ASSERT_TRUE(wait_until([] { return state().running.load() == 0; }));
    ASSERT_TRUE(wait_until([&] {
      return Journal::recover_file(dir.wal()).completed == 1;
    }));
    server.stop();
  }
  const RecoveredJournal recovered = Journal::recover_file(dir.wal());
  EXPECT_EQ(recovered.accepted, 1u);
  ASSERT_EQ(recovered.completions.size(), 1u);
  EXPECT_EQ(recovered.completions[0].status, JobStatus::kCancelled);
  EXPECT_TRUE(recovered.pending.empty());
}

// ---- the headline: SIGKILL the real binary ---------------------------------

constexpr const char kServeBinary[] = PQS_TOOLS_DIR "/pqs_serve";

pid_t spawn_serve(const std::string& wal, int* in_fd, int* out_fd) {
  int in_pipe[2];
  int out_pipe[2];
  PQS_CHECK(::pipe(in_pipe) == 0);
  PQS_CHECK(::pipe(out_pipe) == 0);
  const pid_t pid = ::fork();
  PQS_CHECK(pid >= 0);
  if (pid == 0) {
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execl(kServeBinary, "pqs_serve", "--journal", wal.c_str(), "--threads",
            "2", static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed; the parent sees it in the exit status
  }
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  *in_fd = in_pipe[1];
  *out_fd = out_pipe[0];
  return pid;
}

bool read_line_fd(int fd, std::string& carry, std::string& line) {
  while (true) {
    const std::size_t eol = carry.find('\n');
    if (eol != std::string::npos) {
      line = carry.substr(0, eol);
      carry.erase(0, eol + 1);
      return true;
    }
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) {
      return false;
    }
    carry.append(buf, static_cast<std::size_t>(n));
  }
}

void write_all_fd(int fd, const std::string& bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    PQS_CHECK(n > 0 || errno == EINTR);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
    }
  }
}

std::string slow_submit_line(const std::string& id, std::uint64_t seed) {
  // ~10^9 kernel ops per trial: far longer than the kill latency, so the
  // SIGKILL below is guaranteed to land while these are unfinished.
  Json spec = Json::make_object();
  spec["algorithm"] = std::string("grover");
  spec["n_items"] = std::uint64_t{262144};
  spec["n_blocks"] = std::uint64_t{1};
  Json marked = Json::make_array();
  marked.push_back(std::uint64_t{7});
  spec["marked"] = std::move(marked);
  spec["seed"] = seed;
  spec["shots"] = std::uint64_t{1};
  Json request = Json::make_object();
  request["op"] = std::string("submit");
  request["id"] = id;
  request["spec"] = std::move(spec);
  return request.dump();
}

TEST(CrashRecoveryTest, SigkilledServerReplaysUnfinishedJobsExactlyOnce) {
  TempDir dir;
  const std::string wal = dir.wal();

  // -- run 1: a fast job completes, three slow jobs are caught mid-batch --
  int in_fd = -1;
  int out_fd = -1;
  const pid_t pid = spawn_serve(wal, &in_fd, &out_fd);
  std::string carry;
  std::string line;
  write_all_fd(in_fd, submit_line("grover", "fast", 1) + "\n");
  bool fast_done = false;
  while (!fast_done && read_line_fd(out_fd, carry, line)) {
    const Json event = Json::parse(line);
    fast_done = event.at("event").as_string() == "result" &&
                event.at("id").as_string() == "fast";
  }
  ASSERT_TRUE(fast_done);
  for (std::uint64_t seed = 71; seed < 74; ++seed) {
    write_all_fd(in_fd,
                 slow_submit_line("slow-" + std::to_string(seed), seed) + "\n");
  }
  // Acks are synchronous AND the accepted record is written before each ack
  // is sent: three acks on the pipe mean three durable records.
  for (int acks = 0; acks < 3;) {
    ASSERT_TRUE(read_line_fd(out_fd, carry, line));
    if (Json::parse(line).at("event").as_string() == "accepted") {
      ++acks;
    }
  }
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ::close(in_fd);
  ::close(out_fd);

  const RecoveredJournal after_crash = Journal::recover_file(wal);
  ASSERT_EQ(after_crash.accepted, 4u);
  ASSERT_GE(after_crash.completed, 1u);  // the fast job settled pre-kill
  ASSERT_EQ(after_crash.pending.size(), 3u);  // the batch the kill caught
  std::set<std::string> pending_specs;
  for (const JournalRecord& record : after_crash.pending) {
    pending_specs.insert(spec_dump(record.spec));
  }

  // -- run 2: restart on the same journal with stdin already at EOF --
  int in_fd2 = -1;
  int out_fd2 = -1;
  const pid_t pid2 = spawn_serve(wal, &in_fd2, &out_fd2);
  ::close(in_fd2);  // immediate EOF: the process only replays, then exits
  std::string drainage;
  while (read_line_fd(out_fd2, carry, drainage)) {
  }
  ASSERT_EQ(::waitpid(pid2, &status, 0), pid2);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);
  ::close(out_fd2);

  // Exactly the unfinished jobs ran again: the fresh journal holds one
  // accepted record per previously-pending spec — each now settled — and
  // the fast job (already completed) was NOT resurrected.
  const RecoveredJournal after_restart = Journal::recover_file(wal);
  EXPECT_EQ(after_restart.accepted, 3u);
  EXPECT_EQ(after_restart.completed, 3u);
  EXPECT_TRUE(after_restart.pending.empty());
  std::set<std::string> replayed_specs;
  for (const JournalRecord& record : after_restart.accepted_records) {
    replayed_specs.insert(spec_dump(record.spec));
  }
  EXPECT_EQ(replayed_specs, pending_specs);
  for (const CompletedJournalRecord& marker : after_restart.completions) {
    EXPECT_EQ(marker.status, JobStatus::kDone);
    EXPECT_TRUE(marker.has_report);
  }
  EXPECT_FALSE(std::filesystem::exists(Journal::recovering_path(wal)));
}

}  // namespace
}  // namespace pqs

#include "common/table.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace pqs {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"K", "upper", "lower"});
  t.add_row({"2", "0.555", "0.230"});
  t.add_row({"32", "0.725", "0.647"});
  const std::string r = t.render();
  EXPECT_NE(r.find("upper"), std::string::npos);
  EXPECT_NE(r.find("0.555"), std::string::npos);
  EXPECT_NE(r.find("0.647"), std::string::npos);
}

TEST(Table, TitleAppearsFirst) {
  Table t({"a"});
  t.set_title("Section 3.1 table");
  const std::string r = t.render();
  EXPECT_EQ(r.rfind("Section 3.1 table", 0), 0u);
}

TEST(Table, ColumnsAreAligned) {
  Table t({"x", "yy"});
  t.add_row({"longvalue", "1"});
  const std::string r = t.render();
  // Every line should have the same length.
  std::size_t first_len = std::string::npos;
  std::size_t pos = 0;
  while (pos < r.size()) {
    const auto eol = r.find('\n', pos);
    const auto len = eol - pos;
    if (first_len == std::string::npos) {
      first_len = len;
    } else {
      EXPECT_EQ(len, first_len);
    }
    pos = eol + 1;
  }
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), CheckFailure);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(0.7853981, 3), "0.785");
  EXPECT_EQ(Table::num(2.0, 1), "2.0");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(std::int64_t{-7}), "-7");
}

}  // namespace
}  // namespace pqs

// Golden fixture: an OpenMP pragma in a file not on the approved list
// (tools/pqs_lint.py OMP_PRAGMA_ALLOWED). Parallel regions interact with
// thread_locals, the BatchRunner's own fan-out, and TSan's libgomp blind
// spot — adding one is a reviewed decision, not a drive-by.
#include <cstddef>

namespace fixture {

double sum(const double* data, std::size_t n) {
  double total = 0.0;
#pragma omp parallel for reduction(+ : total)
  for (long i = 0; i < static_cast<long>(n); ++i) {
    total += data[i];
  }
  return total;
}

}  // namespace fixture

// Golden fixture: the annotated-wrapper shape (common/thread_annotations.h).
// pqs::Mutex is a capability the analysis tracks; PQS_GUARDED_BY members
// cannot be touched without the lock under -Wthread-safety. The lint must
// not flag the wrapper type (and "std::mutex" in this comment is stripped).
#pragma once

#include "common/thread_annotations.h"

namespace fixture {

class Cache {
 public:
  void put(int key, int value) {
    pqs::LockGuard lock(mutex_);
    last_key_ = key;
    last_value_ = value;
  }

 private:
  mutable pqs::Mutex mutex_;
  int last_key_ PQS_GUARDED_BY(mutex_) = 0;
  int last_value_ PQS_GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture

// Golden fixture: raw SoA plane access outside the qsim kernel layer.
// Touching the planes directly bypasses the block-sum cache discipline
// (qsim/soa.h) — the next same-partition reflection would reuse stale sums.
namespace fixture {

struct FakeSoa {
  double* re() { return nullptr; }
  double* im() { return nullptr; }
};

double peek_first_amplitude(FakeSoa& soa) {
  return soa.re()[0] + soa.im()[0];  // raw plane access: flagged
}

}  // namespace fixture

// Golden fixture: the EXACT bug class PR 6 shipped and review had to catch
// dynamically. apply_dense_matrix kept its scratch buffer in a `static
// thread_local` and wrote it inside the OpenMP parallel region — each
// worker thread sees its OWN (empty, size 0) thread_local instance, so the
// writes are out of bounds and the rows never reach the caller's buffer.
// pqs_lint's thread-local-omp rule must flag the in-region reference.
#include <cstddef>
#include <vector>

namespace fixture {

void apply_dense_matrix_prefix_pr6(const double* matrix, const double* in,
                                   double* result, std::size_t dim) {
  static thread_local std::vector<double> scratch;
  scratch.resize(dim);
#pragma omp parallel for schedule(static)
  for (long r = 0; r < static_cast<long>(dim); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      sum += matrix[static_cast<std::size_t>(r) * dim + c] * in[c];
    }
    scratch[static_cast<std::size_t>(r)] = sum;  // worker's OWN empty vector
  }
  for (std::size_t i = 0; i < dim; ++i) {
    result[i] = scratch[i];  // main thread's instance: rows never arrived
  }
}

}  // namespace fixture

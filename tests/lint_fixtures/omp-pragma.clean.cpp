// Golden fixture: serial code, with `#pragma omp` appearing only inside a
// comment and a string literal — both stripped before the omp-pragma rule
// matches, so neither may be flagged.
#include <cstddef>
#include <string>

namespace fixture {

// A tempting spot for #pragma omp parallel for — kept serial on purpose.
double sum(const double* data, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += data[i];
  }
  return total;
}

std::string describe() { return "no #pragma omp here"; }

}  // namespace fixture

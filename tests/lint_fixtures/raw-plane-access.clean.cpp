// Golden fixture: amplitude access through the sanctioned API — get()/set()
// and the kernels layer — plus near-miss identifiers (real(), imag(),
// prefix-free names) that must NOT trip the raw-plane-access rule.
#include <complex>

namespace fixture {

struct FakeState {
  std::complex<double> get(unsigned long i) const {
    return {static_cast<double>(i), 0.0};
  }
};

double peek_first_amplitude(const FakeState& state) {
  const std::complex<double> amp = state.get(0);
  // .real()/.imag() are std::complex accessors, not plane access; a
  // mention of .re( in this comment is stripped before matching.
  return amp.real() + amp.imag();
}

double require_result(double im) { return im; }  // param named im: fine

}  // namespace fixture

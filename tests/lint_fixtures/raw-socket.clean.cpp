// Golden fixture: speaking through the net layer — and names that merely
// resemble socket calls — must stay quiet under the raw-socket rule.
#include <functional>

#include "net/socket.h"

namespace asio {
int bind(int, int);
}

int open_a_door_properly() {
  // The approved path: the net layer owns the raw calls.
  pqs::net::Socket conn = pqs::net::connect_to({"127.0.0.1", 7401});
  conn.shutdown_both();

  // Qualified names from other namespaces are not POSIX entry points.
  const int bound = asio::bind(1, 2);
  auto f = std::bind([](int x) { return x; }, bound);
  return f();
}

// Golden fixture: MUST trip the raw-clock rule.
//
// A deadline computed from the raw steady clock works — until a test needs
// to make a request "slow" and has nothing to fake: the clock read is
// inlined at the call site instead of flowing through common/timing or the
// obs trace clock.
#include <chrono>

bool deadline_passed(std::chrono::steady_clock::time_point deadline) {
  // violation: a raw *_clock::now() outside the sanctioned homes
  return std::chrono::steady_clock::now() >= deadline;
}

unsigned long long wall_stamp() {
  // violation: system_clock is just as unfakeable
  return static_cast<unsigned long long>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// Golden fixture: ordinary file I/O — truncating writes, reads, and names
// that merely contain "app" — must stay quiet under the journal-append rule.
#include <fcntl.h>

#include <fstream>
#include <string>

struct Config {
  std::string app;  // a field named `app` is not an append-mode open
};

int write_a_report(const char* path) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  std::ofstream out(path, std::ios::trunc);
  std::ifstream in(path, std::ios::binary);
  // "std::ios::app" in a string or comment is not code either.
  const std::string doc = "never pass std::ios::app outside the journal";
  return fd + static_cast<int>(doc.size());
}

// Golden fixture: append-mode opens outside src/service/journal.cpp must
// trip the journal-append rule (this file pretends to be a drive-by tool
// writing "just one more line" into a journal).
#include <fcntl.h>

#include <fstream>

int scribble_on_the_journal(const char* path) {
  const int fd = ::open(path, O_WRONLY | O_APPEND);       // violation
  std::ofstream late(path, std::ios::app);                // violation
  std::ofstream later(path, std::ios_base::app);          // violation
  return fd;
}

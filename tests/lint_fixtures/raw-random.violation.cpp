// Golden fixture: stochastic code bypassing pqs::Rng. Both the C rand()
// pair and a naked std::mt19937 break seed-reproducibility — a report's
// printed seed can no longer replay the run.
#include <cstdlib>
#include <random>

namespace fixture {

unsigned long sample_index(unsigned long n) {
  std::srand(42);                           // flagged
  std::mt19937 gen(42);                     // flagged
  return (static_cast<unsigned long>(std::rand()) + gen()) % n;  // flagged
}

}  // namespace fixture

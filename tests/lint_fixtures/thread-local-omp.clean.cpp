// Golden fixture: the FIXED shape of the PR 6 bug (what
// src/qsim/diffusion.cpp ships today). The scratch buffer is still a
// `static thread_local`, but the parallel region only touches a raw
// pointer hoisted OUTSIDE the region — every worker writes the calling
// thread's buffer. pqs_lint's thread-local-omp rule must stay quiet.
#include <cstddef>
#include <vector>

namespace fixture {

void apply_dense_matrix_fixed(const double* matrix, const double* in,
                              double* result, std::size_t dim) {
  static thread_local std::vector<double> scratch;
  scratch.resize(dim);
  // Hoisted raw pointer: the region shares the caller's buffer. A comment
  // mentioning scratch inside the region must not trip the lint either.
  double* const out = scratch.data();
#pragma omp parallel for schedule(static)
  for (long r = 0; r < static_cast<long>(dim); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      sum += matrix[static_cast<std::size_t>(r) * dim + c] * in[c];
    }
    // (scratch would be wrong here; out aliases the caller's scratch)
    out[static_cast<std::size_t>(r)] = sum;
  }
  for (std::size_t i = 0; i < dim; ++i) {
    result[i] = scratch[i];  // after the region: back on the calling thread
  }
}

}  // namespace fixture

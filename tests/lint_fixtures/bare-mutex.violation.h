// Golden fixture: a bare std::mutex member. Invisible to the Clang
// thread-safety analysis — the members it guards revert to comment-checked
// locking, which is how lock-discipline bugs ship.
#pragma once

#include <mutex>

namespace fixture {

class Cache {
 public:
  void put(int key, int value) {
    std::lock_guard lock(mutex_);
    last_key_ = key;
    last_value_ = value;
  }

 private:
  mutable std::mutex mutex_;  // flagged: bypasses pqs::Mutex
  int last_key_ = 0;          // "guarded by mutex_" — but only in comments
  int last_value_ = 0;
};

}  // namespace fixture

// Golden fixture: must stay CLEAN under the raw-clock rule.
//
// The sanctioned shapes: Stopwatch for elapsed time, steady_now() for
// deadline arithmetic, trace_now_ns() for span timestamps. A clock name in
// a comment (std::chrono::steady_clock::now()) or a string must not trip
// the rule either — the linter strips both.
#include <chrono>
#include <cstdint>

namespace pqs {
std::chrono::steady_clock::time_point steady_now();
namespace obs {
std::uint64_t trace_now_ns();
}
}  // namespace pqs

bool deadline_passed(std::chrono::steady_clock::time_point deadline) {
  return pqs::steady_now() >= deadline;  // wrapper, not a raw clock read
}

std::uint64_t span_stamp() {
  const char* doc = "std::chrono::steady_clock::now() belongs in strings";
  (void)doc;
  return pqs::obs::trace_now_ns();
}

// Golden fixture: randomness drawn from the seeded project Rng, plus
// near-miss identifiers ("brand", "operand", "strand") that contain the
// letters r-a-n-d but must not trip the raw-random rule.
namespace fixture {

struct SeededRng {  // stands in for pqs::Rng (common/random.h)
  unsigned long state;
  unsigned long next() { return state = state * 6364136223846793005UL + 1; }
};

unsigned long sample_index(SeededRng& rng, unsigned long n) {
  return rng.next() % n;
}

unsigned long brand(unsigned long operand) { return operand; }
unsigned long strand(unsigned long x) { return brand(x); }

}  // namespace fixture

// Golden fixture: raw POSIX socket calls outside src/net/ must trip the
// raw-socket rule (this file pretends to be a tool, not the net layer).
#include <sys/socket.h>

int open_a_door() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);  // violation
  ::listen(fd, 16);                                  // violation
  return ::accept(fd, nullptr, nullptr);             // violation
}

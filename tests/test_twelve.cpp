#include "partial/twelve.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace pqs::partial {
namespace {

constexpr double kInvSqrt12 = 0.28867513459481287;  // 1/sqrt(12)

TEST(Figure1, UsesExactlyTwoQueries) {
  EXPECT_EQ(run_figure1().queries, 2u);
}

TEST(Figure1, StageA_UniformSuperposition) {
  const auto trace = run_figure1(7);
  for (const double a : trace.stages[0]) {
    EXPECT_NEAR(a, kInvSqrt12, 1e-12);
  }
}

TEST(Figure1, StageB_TargetInverted) {
  const auto trace = run_figure1(7);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(trace.stages[1][i], (i == 7 ? -1.0 : 1.0) * kInvSqrt12,
                1e-12);
  }
}

TEST(Figure1, StageC_BlockInversionConcentratesTarget) {
  // Target block (4..7): rest 0, target 2/sqrt(12); other blocks unchanged.
  const auto trace = run_figure1(7);
  for (std::size_t i = 0; i < 12; ++i) {
    double expected = kInvSqrt12;
    if (i == 7) {
      expected = 2.0 * kInvSqrt12;
    } else if (i >= 4 && i < 8) {
      expected = 0.0;
    }
    EXPECT_NEAR(trace.stages[2][i], expected, 1e-12) << "i=" << i;
  }
}

TEST(Figure1, StageD_TargetInvertedAgain) {
  const auto trace = run_figure1(7);
  EXPECT_NEAR(trace.stages[3][7], -2.0 * kInvSqrt12, 1e-12);
}

TEST(Figure1, StageE_AllAmplitudeInTargetBlock) {
  // Final: non-target blocks exactly 0; target block (1,1,1,3)/sqrt(12).
  const auto trace = run_figure1(7);
  for (std::size_t i = 0; i < 12; ++i) {
    double expected = 0.0;
    if (i == 7) {
      expected = 3.0 * kInvSqrt12;
    } else if (i >= 4 && i < 8) {
      expected = kInvSqrt12;
    }
    EXPECT_NEAR(trace.stages[4][i], expected, 1e-12) << "i=" << i;
  }
}

TEST(Figure1, BlockProbabilityOneTargetThreeQuarters) {
  const auto trace = run_figure1(7);
  EXPECT_NEAR(trace.block_probability, 1.0, 1e-12);
  EXPECT_NEAR(trace.target_probability, 0.75, 1e-12);
}

TEST(Figure1, WorksForEveryTargetPosition) {
  for (qsim::Index t = 0; t < 12; ++t) {
    const auto trace = run_figure1(t);
    ASSERT_NEAR(trace.block_probability, 1.0, 1e-12) << "target=" << t;
    ASSERT_NEAR(trace.target_probability, 0.75, 1e-12) << "target=" << t;
  }
}

TEST(Figure1, RejectsOutOfRangeTarget) {
  EXPECT_THROW(run_figure1(12), CheckFailure);
}

TEST(Figure1, RenderShowsAllStages) {
  const auto trace = run_figure1(7);
  const std::string r = trace.render();
  EXPECT_NE(r.find("(A)"), std::string::npos);
  EXPECT_NE(r.find("(E)"), std::string::npos);
  EXPECT_NE(r.find("query 1"), std::string::npos);
  EXPECT_NE(r.find("query 2"), std::string::npos);
}

TEST(TwoQuery, ExactnessConditionEnumeratesInstances) {
  // N = 4K/(K-2) with K | N and N/K >= 2: exactly (12, 3) and (8, 4).
  const auto instances = two_query_instances(64);
  ASSERT_EQ(instances.size(), 2u);
  EXPECT_EQ(instances[0].n_items, 12u);
  EXPECT_EQ(instances[0].k_blocks, 3u);
  EXPECT_EQ(instances[1].n_items, 8u);
  EXPECT_EQ(instances[1].k_blocks, 4u);
}

TEST(TwoQuery, ExactInstancesReachProbabilityOne) {
  for (const auto& inst : two_query_instances(64)) {
    for (qsim::Index t = 0; t < inst.n_items; ++t) {
      ASSERT_NEAR(
          two_query_block_probability(inst.n_items, inst.k_blocks, t), 1.0,
          1e-12)
          << "N=" << inst.n_items << " K=" << inst.k_blocks << " t=" << t;
    }
  }
}

TEST(TwoQuery, OtherShapesFallShortOfOne) {
  EXPECT_LT(two_query_block_probability(16, 4, 3), 1.0 - 1e-6);
  EXPECT_LT(two_query_block_probability(20, 5, 11), 1.0 - 1e-6);
  EXPECT_LT(two_query_block_probability(12, 2, 5), 1.0 - 1e-6);
}

TEST(TwoQuery, StillBetterThanUniformGuessing) {
  // Even off the exact manifold, two queries concentrate a lot of mass.
  const double p = two_query_block_probability(16, 4, 3);
  EXPECT_GT(p, 0.5);  // vs 0.25 for guessing
}

}  // namespace
}  // namespace pqs::partial

#include "common/check.h"

#include <gtest/gtest.h>

namespace pqs {
namespace {

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(PQS_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(PQS_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailingCheckThrowsCheckFailure) {
  EXPECT_THROW(PQS_CHECK(1 == 2), CheckFailure);
}

TEST(Check, FailureMessageContainsExpressionAndLocation) {
  try {
    PQS_CHECK_MSG(2 > 3, "custom context");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(Check, CheckFiresInReleaseBuilds) {
  // PQS_CHECK must be active regardless of NDEBUG.
  bool fired = false;
  try {
    PQS_CHECK(false);
  } catch (const CheckFailure&) {
    fired = true;
  }
  EXPECT_TRUE(fired);
}

TEST(Check, SideEffectsEvaluatedExactlyOnce) {
  int calls = 0;
  const auto count = [&calls] {
    ++calls;
    return true;
  };
  PQS_CHECK(count());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace pqs

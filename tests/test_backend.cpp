// Property tests for the pluggable simulation backends: the O(K)
// SymmetryBackend must agree with the O(N) DenseBackend to machine
// precision on every operator and observable, across randomized shapes,
// the paper's N = 12 / K = 3 instance, and huge-N runs cross-checked
// against the analytic subspace model.
#include "qsim/backend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/math.h"
#include "common/timing.h"
#include "grover/grover.h"
#include "oracle/database.h"
#include "partial/analytic.h"
#include "partial/grk.h"
#include "partial/interleave.h"
#include "partial/multi.h"
#include "partial/optimizer.h"

namespace pqs::qsim {
namespace {

double linf(const std::vector<Amplitude>& a, const std::vector<Amplitude>& b) {
  EXPECT_EQ(a.size(), b.size());
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::abs(a[i] - b[i]));
  }
  return d;
}

void expect_backends_agree(const Backend& dense, const Backend& symmetry,
                           double tol = 1e-10) {
  EXPECT_NEAR(dense.norm_squared(), symmetry.norm_squared(), tol);
  EXPECT_NEAR(dense.marked_probability(), symmetry.marked_probability(), tol);
  const auto dist_dense = dense.block_distribution();
  const auto dist_sym = symmetry.block_distribution();
  ASSERT_EQ(dist_dense.size(), dist_sym.size());
  for (std::size_t b = 0; b < dist_dense.size(); ++b) {
    EXPECT_NEAR(dist_dense[b], dist_sym[b], tol) << "block " << b;
  }
  EXPECT_LT(linf(dense.amplitudes_copy(), symmetry.amplitudes_copy()), tol);
}

TEST(BackendKindTest, ParsesAndRenders) {
  EXPECT_EQ(parse_backend_kind("auto"), BackendKind::kAuto);
  EXPECT_EQ(parse_backend_kind("dense"), BackendKind::kDense);
  EXPECT_EQ(parse_backend_kind("symmetry"), BackendKind::kSymmetry);
  EXPECT_EQ(to_string(BackendKind::kSymmetry), "symmetry");
  EXPECT_THROW(parse_backend_kind("gpu"), CheckFailure);
}

TEST(BackendKindTest, AutoPicksDenseWhenItFitsAndSymmetryBeyond) {
  const auto small = BackendSpec::single_target(1u << 10, 4, 7);
  EXPECT_EQ(resolve_backend(BackendKind::kAuto, small), BackendKind::kDense);
  const auto huge =
      BackendSpec::single_target(std::uint64_t{1} << 48, 8, 12345);
  EXPECT_EQ(resolve_backend(BackendKind::kAuto, huge),
            BackendKind::kSymmetry);
  EXPECT_THROW(resolve_backend(BackendKind::kDense, huge), CheckFailure);
}

TEST(BackendKindTest, SymmetryRejectsMarkedSetsSpanningBlocks) {
  // Two marked items in different blocks leave the 3-class symmetry.
  const BackendSpec spread{16, 4, {1, 9}};
  EXPECT_FALSE(symmetry_supports(spread));
  EXPECT_THROW(make_backend(BackendKind::kSymmetry, spread), CheckFailure);
  // Same two items under K = 2 share a block: supported.
  const BackendSpec clustered{16, 2, {1, 5}};
  EXPECT_TRUE(symmetry_supports(clustered));
  EXPECT_NO_THROW(make_backend(BackendKind::kSymmetry, clustered));
}

/// Randomized GRK evolutions: both engines, identical observables.
TEST(BackendAgreement, RandomizedGrkShapes) {
  Rng rng(20050612);
  for (int trial = 0; trial < 40; ++trial) {
    const auto n = static_cast<unsigned>(rng.uniform_int(3, 11));
    const auto k = static_cast<unsigned>(rng.uniform_int(1, n - 1));
    const std::uint64_t n_items = pow2(n);
    const Index target = rng.uniform_below(n_items);
    const auto l1 = static_cast<std::uint64_t>(rng.uniform_int(0, 24));
    const auto l2 = static_cast<std::uint64_t>(rng.uniform_int(0, 24));
    const auto spec = BackendSpec::single_target(n_items, pow2(k), target);

    auto dense = make_backend(BackendKind::kDense, spec);
    auto symmetry = make_backend(BackendKind::kSymmetry, spec);
    for (auto* b : {dense.get(), symmetry.get()}) {
      for (std::uint64_t i = 0; i < l1; ++i) {
        b->apply_oracle();
        b->apply_global_diffusion();
      }
      for (std::uint64_t i = 0; i < l2; ++i) {
        b->apply_oracle();
        b->apply_block_diffusion();
      }
      b->apply_step3();
    }
    expect_backends_agree(*dense, *symmetry);
  }
}

/// Randomized generalized-phase sequences (the sure-success operator set).
TEST(BackendAgreement, RandomizedGeneralizedSequences) {
  Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const auto n = static_cast<unsigned>(rng.uniform_int(3, 9));
    const auto k = static_cast<unsigned>(rng.uniform_int(1, n - 1));
    const auto spec = BackendSpec::single_target(
        pow2(n), pow2(k), rng.uniform_below(pow2(n)));
    auto dense = make_backend(BackendKind::kDense, spec);
    auto symmetry = make_backend(BackendKind::kSymmetry, spec);
    for (int step = 0; step < 12; ++step) {
      const auto op = rng.uniform_int(0, 5);
      const double phi = rng.uniform(-kPi, kPi);
      for (auto* b : {dense.get(), symmetry.get()}) {
        switch (op) {
          case 0: b->apply_oracle(); break;
          case 1: b->apply_oracle_phase(phi); break;
          case 2: b->apply_global_rotation(phi); break;
          case 3: b->apply_block_rotation(phi); break;
          case 4: b->apply_step3(); break;
          case 5: b->apply_global_phase(std::polar(1.0, phi)); break;
        }
      }
    }
    expect_backends_agree(*dense, *symmetry);
  }
}

/// Multi-marked clustered sets keep the symmetry exact.
TEST(BackendAgreement, RandomizedMultiMarked) {
  Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    const auto n = static_cast<unsigned>(rng.uniform_int(4, 10));
    const auto k = static_cast<unsigned>(rng.uniform_int(1, n - 1));
    const std::uint64_t n_items = pow2(n);
    const std::uint64_t block_size = n_items >> k;
    const Index block = rng.uniform_below(pow2(k));
    const auto m =
        static_cast<std::uint64_t>(rng.uniform_int(
            1, static_cast<std::int64_t>(std::min<std::uint64_t>(
                   block_size, 5))));
    std::vector<Index> marked;
    while (marked.size() < m) {
      const Index cand = block * block_size + rng.uniform_below(block_size);
      if (std::find(marked.begin(), marked.end(), cand) == marked.end()) {
        marked.push_back(cand);
      }
    }
    std::sort(marked.begin(), marked.end());
    const BackendSpec spec{n_items, pow2(k), marked};

    auto dense = make_backend(BackendKind::kDense, spec);
    auto symmetry = make_backend(BackendKind::kSymmetry, spec);
    for (auto* b : {dense.get(), symmetry.get()}) {
      for (int i = 0; i < 6; ++i) {
        b->apply_oracle();
        b->apply_global_diffusion();
      }
      for (int i = 0; i < 3; ++i) {
        b->apply_oracle();
        b->apply_block_diffusion();
      }
      if (n_items - m >= 2) {
        b->apply_step3();
      }
    }
    expect_backends_agree(*dense, *symmetry);
  }
}

/// The paper's Section-1.3 example: N = 12 items, K = 3 blocks, TWO queries
/// put all probability in the target block (target holds 3/4 of it). Neither
/// 12 nor 3 is a power of two — both engines are dimension-agnostic.
TEST(BackendAgreement, PaperTwelveItemThreeBlockInstance) {
  for (Index target = 0; target < 12; ++target) {
    const auto spec = BackendSpec::single_target(12, 3, target);
    auto dense = make_backend(BackendKind::kDense, spec);
    auto symmetry = make_backend(BackendKind::kSymmetry, spec);
    for (auto* b : {dense.get(), symmetry.get()}) {
      b->apply_oracle();           // query 1   (stage B)
      b->apply_block_diffusion();  //           (stage C)
      b->apply_oracle();           // query 2   (stage D)
      b->apply_global_diffusion();  //          (stage E)
    }
    expect_backends_agree(*dense, *symmetry);
    EXPECT_NEAR(symmetry->block_probability(symmetry->target_block()), 1.0,
                1e-10);
    EXPECT_NEAR(symmetry->marked_probability(), 0.75, 1e-10);
  }
}

/// GRK through the public entry point: dense and symmetry engines report
/// identical pre-measurement probabilities at every tested n <= 20.
TEST(BackendAgreement, GrkEntryPointAcrossSizes) {
  for (unsigned n : {6u, 10u, 14u, 16u, 18u, 20u}) {
    for (unsigned k : {1u, 2u, 4u}) {
      if (k >= n) {
        continue;
      }
      const oracle::Database db =
          oracle::Database::with_qubits(n, pow2(n) / 5 + 3);
      Rng rng_dense(1), rng_sym(1);
      partial::GrkOptions dense_opts, sym_opts;
      dense_opts.backend = BackendKind::kDense;
      sym_opts.backend = BackendKind::kSymmetry;
      const auto dense = partial::run_partial_search(db, k, rng_dense,
                                                     dense_opts);
      const auto sym = partial::run_partial_search(db, k, rng_sym, sym_opts);
      EXPECT_EQ(dense.backend_used, BackendKind::kDense);
      EXPECT_EQ(sym.backend_used, BackendKind::kSymmetry);
      EXPECT_EQ(dense.queries, sym.queries);
      EXPECT_NEAR(dense.block_probability, sym.block_probability, 1e-10)
          << "n=" << n << " k=" << k;
      EXPECT_NEAR(dense.state_probability, sym.state_probability, 1e-10);
    }
  }
}

/// The scale unlock: 48-qubit partial search in O(K) per iteration, under a
/// second, cross-checked against the exact analytic subspace model.
TEST(SymmetryBackendTest, RunsFortyEightQubitGrkUnderASecond) {
  const unsigned n = 48, k = 3;
  const std::uint64_t n_items = pow2(n);
  const std::uint64_t k_blocks = pow2(k);
  // Iteration counts from the paper's asymptotic optimum (the finite-N
  // integer scan would itself cost O(sqrt(N) sqrt(N/K))).
  const auto opt = partial::optimize_epsilon(k_blocks);
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  const double sqrt_block =
      std::sqrt(static_cast<double>(n_items / k_blocks));
  partial::GrkOptions options;
  options.l1 = static_cast<std::uint64_t>(
      std::llround(kQuarterPi * (1.0 - opt.epsilon) * sqrt_n));
  options.l2 = static_cast<std::uint64_t>(std::llround(
      (opt.angles.theta1 + opt.angles.theta2) / 2.0 * sqrt_block));
  options.backend = BackendKind::kSymmetry;

  const oracle::Database db(n_items, (n_items / 3) | 1);
  Rng rng(7);
  Stopwatch watch;
  const auto result = partial::run_partial_search(db, k, rng, options);
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer) || \
    defined(__SANITIZE_THREAD__) || __has_feature(thread_sanitizer)
  // Instrumented builds run the same ~1.3e7 O(1) steps a few times slower;
  // the wall-clock claim belongs to uninstrumented builds.
  EXPECT_LT(watch.seconds(), 10.0);
#else
  EXPECT_LT(watch.seconds(), 1.0);
#endif

  EXPECT_EQ(result.backend_used, BackendKind::kSymmetry);
  EXPECT_EQ(result.queries, *options.l1 + *options.l2 + 1);
  EXPECT_GT(result.block_probability, 0.9);
  EXPECT_TRUE(result.correct);

  // Cross-check against the O(1)-per-step analytic model. Both engines are
  // exact up to roundoff; after ~1.3e7 iterations of different O(1)
  // arithmetic they drift apart by ~1e-9, far inside this margin.
  const partial::SubspaceModel model(n_items, k_blocks);
  const auto modeled = model.run_grk(*options.l1, *options.l2);
  EXPECT_NEAR(result.block_probability,
              modeled.target_block_probability(), 1e-7);
}

TEST(SymmetryBackendTest, GroverAtFortyQubitsMatchesClosedForm) {
  const std::uint64_t n_items = pow2(40);
  const oracle::Database db(n_items, 99);
  const std::uint64_t iterations = 123456;
  grover::SearchOptions options;
  options.backend = BackendKind::kSymmetry;
  const double p =
      grover::success_probability_after(db, iterations, options);
  EXPECT_NEAR(p, grover_success_probability(n_items, iterations), 1e-9);
}

TEST(SymmetryBackendTest, SamplingMatchesDistribution) {
  const auto spec = BackendSpec::single_target(pow2(10), 4, 700);
  auto backend = make_backend(BackendKind::kSymmetry, spec);
  for (int i = 0; i < 8; ++i) {
    backend->apply_oracle();
    backend->apply_global_diffusion();
  }
  for (int i = 0; i < 5; ++i) {
    backend->apply_oracle();
    backend->apply_block_diffusion();
  }
  backend->apply_step3();
  Rng rng(11);
  std::vector<std::uint64_t> block_counts(4, 0);
  for (int s = 0; s < 2000; ++s) {
    const Index x = backend->sample(rng);
    ASSERT_LT(x, spec.n_items);
    EXPECT_NEAR(backend->probability(x) > 0.0, true, 0);
    ++block_counts[backend->block_of(x)];
  }
  const auto dist = backend->block_distribution();
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_NEAR(static_cast<double>(block_counts[b]) / 2000.0, dist[b], 0.05)
        << "block " << b;
  }
}

TEST(BackendCircuitTest, SymmetricCircuitExecutionMatchesDense) {
  const unsigned n = 8, k = 2;
  const oracle::Database db = oracle::Database::with_qubits(n, 200);
  Circuit circuit(n);
  for (int i = 0; i < 6; ++i) {
    circuit.grover_iteration();
  }
  for (int i = 0; i < 3; ++i) {
    circuit.partial_iteration(k);
  }
  circuit.non_target_mean_reflection();

  const auto view = db.view();
  const auto spec = symmetric_spec(circuit, view);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->n_blocks, pow2(k));

  auto backend = make_backend(BackendKind::kSymmetry, *spec);
  const std::uint64_t queries = apply_circuit(*backend, circuit);
  EXPECT_EQ(queries, circuit.query_count());

  auto state = StateVector::uniform(n);
  circuit.apply(state, view);
  for (Index b = 0; b < pow2(k); ++b) {
    EXPECT_NEAR(state.block_probability(k, b), backend->block_probability(b),
                1e-10);
  }
}

TEST(BackendCircuitTest, GateLevelCircuitsAreNotSymmetric) {
  const oracle::Database db = oracle::Database::with_qubits(5, 3);
  Circuit circuit(5);
  circuit.oracle();
  circuit.global_diffusion_gate_level();  // H/X layers + MCZ: dense only
  EXPECT_FALSE(symmetric_spec(circuit, db.view()).has_value());
}

TEST(BackendDispatchTest, InterleavedScheduleRunsOnBothEngines) {
  const std::uint64_t n_items = pow2(12);
  const std::uint64_t k_blocks = 4;
  const auto optimum = partial::optimize_interleaved(
      n_items, k_blocks, partial::default_min_success(n_items), 3);
  const oracle::Database db(n_items, 1234);
  const double dense_p = partial::run_schedule_on_backend(
      db, 2, optimum.schedule, BackendKind::kDense);
  const double sym_p = partial::run_schedule_on_backend(
      db, 2, optimum.schedule, BackendKind::kSymmetry);
  EXPECT_NEAR(dense_p, sym_p, 1e-10);
  EXPECT_NEAR(dense_p, optimum.success, 1e-9);
}

TEST(BackendDispatchTest, SnapshotsRequireDense) {
  const oracle::Database db = oracle::Database::with_qubits(6, 5);
  Rng rng(3);
  partial::GrkOptions options;
  options.capture_snapshots = true;
  options.backend = BackendKind::kSymmetry;
  EXPECT_THROW(partial::run_partial_search(db, 2, rng, options),
               CheckFailure);
}

TEST(BackendDispatchTest, MultiMarkedEntryPointAgreesAcrossEngines) {
  const unsigned n = 10, k = 2;
  const std::uint64_t block_size = pow2(n - k);
  // Three marked items clustered in block 2.
  const std::vector<Index> marked{2 * block_size + 3, 2 * block_size + 100,
                                  2 * block_size + 200};
  const oracle::MarkedDatabase db_dense(pow2(n), marked);
  const oracle::MarkedDatabase db_sym(pow2(n), marked);
  Rng rng_a(5), rng_b(5);
  partial::MultiGrkOptions dense_opts, sym_opts;
  dense_opts.backend = BackendKind::kDense;
  sym_opts.backend = BackendKind::kSymmetry;
  const auto dense =
      partial::run_partial_search_multi(db_dense, k, rng_a, dense_opts);
  const auto sym =
      partial::run_partial_search_multi(db_sym, k, rng_b, sym_opts);
  EXPECT_NEAR(dense.block_probability, sym.block_probability, 1e-10);
  EXPECT_NEAR(dense.marked_probability, sym.marked_probability, 1e-10);
  EXPECT_EQ(dense.queries, sym.queries);
}

}  // namespace
}  // namespace pqs::qsim
